package apps

import (
	"fmt"
	"math"
	"sort"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// Message type bytes for the SpMV mailbox protocol.
const (
	spmvMsgDegree   = 0 // [v]              degree increment (delegate detection)
	spmvMsgDelegate = 1 // [v]              broadcast: v is delegated
	spmvMsgEntry    = 2 // [i, j, bits]     store nonzero a_ij at the receiver
	spmvMsgX        = 3 // [j, bits]        broadcast: delegated x_j value
	spmvMsgY        = 4 // [i, bits]        accumulate into y_i at owner(i)
)

// SpMVConfig parameterizes the Section V-C experiment.
type SpMVConfig struct {
	Mailbox ygm.Options
	// Scale: the matrix is 2^Scale x 2^Scale (one column per vertex).
	Scale int
	// EdgesPerRank is each rank's share of generated nonzeros.
	EdgesPerRank int
	Params       graph.RMATParams
	// DelegateFrac sets the delegate threshold (0 disables delegates,
	// as in the Fig. 8c uniform experiment).
	DelegateFrac float64
	Seed         int64
	// Iterations is how many y = A x products to run (timing averages
	// over them); x is refreshed deterministically each iteration.
	Iterations int
}

// SpMVResult is one rank's outcome.
type SpMVResult struct {
	// Y[l] is the result entry for locally owned index l*P+rank; for
	// delegated indices the owner's entry is authoritative.
	Y []float64
	// Delegates is the global delegated-vertex count.
	Delegates int
	// SetupEnd is this rank's virtual time when matrix distribution
	// finished — the multiply phases run from here to the end, which is
	// the window the paper's Fig. 8 times.
	SetupEnd float64
	Mailbox  ygm.Stats
}

// spmvEntry is one locally stored nonzero.
type spmvEntry struct {
	row, col uint64
	val      float64
}

type spmvState struct {
	p     *transport.Proc
	world int

	degrees   []uint64
	delegates map[uint64]bool

	entries []spmvEntry

	xDel map[uint64]float64 // replicated delegated x values
	yDel map[uint64]float64 // local delegated y partials
	y    []float64          // owned y entries
}

func (st *spmvState) handle(s ygm.Sender, payload []byte) {
	r := codec.NewReader(payload)
	typ, err := r.Byte()
	if err != nil {
		panic(fmt.Sprintf("apps: corrupt spmv message: %v", err))
	}
	switch typ {
	case spmvMsgDegree:
		v := mustUvarint(r)
		st.degrees[graph.LocalID(v, st.world)]++
	case spmvMsgDelegate:
		st.delegates[mustUvarint(r)] = true
	case spmvMsgEntry:
		i, j := mustUvarint(r), mustUvarint(r)
		bits := mustUvarint(r)
		st.entries = append(st.entries, spmvEntry{row: i, col: j, val: math.Float64frombits(bits)})
	case spmvMsgX:
		j := mustUvarint(r)
		st.xDel[j] = math.Float64frombits(mustUvarint(r))
	case spmvMsgY:
		i := mustUvarint(r)
		st.y[graph.LocalID(i, st.world)] += math.Float64frombits(mustUvarint(r))
	default:
		panic(fmt.Sprintf("apps: unknown spmv message type %d", typ))
	}
}

// XValue is the deterministic input vector used by every rank (and the
// sequential oracle): x_j depends only on j and the iteration number.
func XValue(j uint64, iter int) float64 {
	return 1 + float64((j*2654435761+uint64(iter)*97)%1000)/1000
}

// MatrixValue is the deterministic nonzero value attached to the k-th
// generated edge (u,v).
func MatrixValue(u, v uint64) float64 {
	return 1 + float64((u*31+v*17)%100)/100
}

// SpMV runs Algorithm 2 with the vertex-delegate storage of Section V-C:
// nonzeros with a delegated column are colocated with their row owner
// (local x copy), nonzeros with a delegated row accumulate into a local
// y copy combined by an allreduce at the end of each product.
func SpMV(p *transport.Proc, cfg SpMVConfig) (*SpMVResult, error) {
	if cfg.Scale < 1 || cfg.EdgesPerRank < 0 || cfg.Iterations < 1 {
		return nil, fmt.Errorf("apps: invalid spmv config %+v", cfg)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	world := p.WorldSize()
	numVertices := uint64(1) << uint(cfg.Scale)
	localN := graph.LocalCount(numVertices, world, int(p.Rank()))
	st := &spmvState{
		p:         p,
		world:     world,
		degrees:   make([]uint64, localN),
		delegates: make(map[uint64]bool),
		xDel:      make(map[uint64]float64),
		yDel:      make(map[uint64]float64),
	}
	mb := ygm.New(p, st.handle, mailboxOptions(cfg.Mailbox)...)
	comm := collective.World(p)

	// Phase 0: generate this rank's nonzeros. Edge (u,v) becomes entry
	// a[v][u] (column = source vertex, as a CSC column partition by
	// vertex implies).
	gen := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*104729+int64(p.Rank()))
	myEdges := graph.Collect(gen, cfg.EdgesPerRank)

	// Phase 1: delegate detection (vertex degree over rows+columns).
	if cfg.DelegateFrac > 0 {
		for _, e := range myEdges {
			mb.Send(machine.Rank(graph.Owner(e.U, world)), ccEncode(spmvMsgDegree, e.U))
			mb.Send(machine.Rank(graph.Owner(e.V, world)), ccEncode(spmvMsgDegree, e.V))
		}
		mb.WaitEmpty()
		totalEdges := uint64(cfg.EdgesPerRank) * uint64(world)
		threshold := graph.DelegateThreshold(cfg.Params, cfg.Scale, totalEdges, cfg.DelegateFrac)
		for l, d := range st.degrees {
			if d >= threshold {
				v := graph.GlobalID(uint64(l), world, int(p.Rank()))
				st.delegates[v] = true
				mb.Broadcast(ccEncode(spmvMsgDelegate, v))
			}
		}
		mb.WaitEmpty()
	}

	// Phase 2: entry distribution per the delegate placement rules.
	for _, e := range myEdges {
		i, j := e.V, e.U
		val := MatrixValue(e.U, e.V)
		bits := math.Float64bits(val)
		jDel, iDel := st.delegates[j], st.delegates[i]
		var store machine.Rank
		switch {
		case jDel && iDel:
			store = p.Rank() // fully local: x and y copies both exist
		case jDel:
			store = machine.Rank(graph.Owner(i, world)) // colocate with row owner
		default:
			store = machine.Rank(graph.Owner(j, world)) // CSC by column
		}
		mb.Send(store, ccEncode(spmvMsgEntry, i, j, bits))
	}
	mb.WaitEmpty()

	// Sorted delegate list shared by all ranks (same set everywhere).
	delList := make([]uint64, 0, len(st.delegates))
	for d := range st.delegates {
		delList = append(delList, d)
	}
	sort.Slice(delList, func(a, b int) bool { return delList[a] < delList[b] })

	result := &SpMVResult{Delegates: len(delList), SetupEnd: p.Now()}
	cpm := p.Model().ComputePerMessage

	for iter := 0; iter < cfg.Iterations; iter++ {
		// Refresh x: owned entries are computed locally; delegated x
		// values are broadcast by their owners (every core gets a copy).
		for _, d := range delList {
			if graph.Owner(d, world) == int(p.Rank()) {
				mb.Broadcast(ccEncode(spmvMsgX, d, math.Float64bits(XValue(d, iter))))
			}
			st.xDel[d] = XValue(d, iter) // owners and receivers agree
		}
		st.y = make([]float64, localN)
		for d := range st.yDel {
			delete(st.yDel, d)
		}
		if len(delList) > 0 {
			mb.WaitEmpty() // delegated x copies must land before the multiply
		}

		// Multiply: one message per nonzero whose row is remote and not
		// delegated; delegated rows/columns stay local.
		for _, en := range st.entries {
			p.Compute(cpm)
			var xj float64
			if st.delegates[en.col] {
				xj = st.xDel[en.col]
			} else if graph.Owner(en.col, world) == int(p.Rank()) {
				xj = XValue(en.col, iter)
			} else {
				panic(fmt.Sprintf("apps: rank %d stored entry with unowned x_%d", p.Rank(), en.col))
			}
			prod := en.val * xj
			switch {
			case st.delegates[en.row]:
				st.yDel[en.row] += prod
			case graph.Owner(en.row, world) == int(p.Rank()):
				st.y[graph.LocalID(en.row, world)] += prod
			default:
				mb.Send(machine.Rank(graph.Owner(en.row, world)),
					ccEncode(spmvMsgY, en.row, math.Float64bits(prod)))
			}
		}
		mb.WaitEmpty()

		// Combine delegated y entries with an allreduce (Section V-C).
		if len(delList) > 0 {
			partial := make([]float64, len(delList))
			for k, d := range delList {
				partial[k] = st.yDel[d]
			}
			total := comm.AllreduceF64(partial, collective.SumF64)
			for k, d := range delList {
				if graph.Owner(d, world) == int(p.Rank()) {
					st.y[graph.LocalID(d, world)] = total[k]
				}
			}
		}
	}
	result.Y = st.y
	result.Mailbox = mb.Stats()
	return result, nil
}
