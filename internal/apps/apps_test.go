package apps

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/spmat"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func runApps(t *testing.T, nodes, cores int, body func(p *transport.Proc) error) *transport.Report {
	t.Helper()
	rep, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  5,
	}, body)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// --- Degree counting ------------------------------------------------------

func TestDegreeCountMatchesOracle(t *testing.T) {
	const (
		nodes, cores = 2, 3
		numVertices  = 1 << 10
		edgesPerRank = 500
	)
	world := nodes * cores
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			var mu sync.Mutex
			results := make([]*DegreeCountResult, world)
			cfg := DegreeCountConfig{
				Mailbox:      ygm.Options{Scheme: scheme, Capacity: 64},
				NumVertices:  numVertices,
				EdgesPerRank: edgesPerRank,
				BatchSize:    200,
				NewGen: func(p *transport.Proc) graph.Generator {
					return graph.NewUniform(numVertices, 900+int64(p.Rank()))
				},
			}
			runApps(t, nodes, cores, func(p *transport.Proc) error {
				res, err := DegreeCount(p, cfg)
				if err != nil {
					return err
				}
				mu.Lock()
				results[p.Rank()] = res
				mu.Unlock()
				return nil
			})
			// Oracle: regenerate every rank's stream.
			var all []graph.Edge
			for r := 0; r < world; r++ {
				all = append(all, graph.Collect(graph.NewUniform(numVertices, 900+int64(r)), edgesPerRank)...)
			}
			want := graph.Degrees(all, numVertices)
			for v := uint64(0); v < numVertices; v++ {
				r := graph.Owner(v, world)
				got := results[r].Degrees[graph.LocalID(v, world)]
				if got != want[v] {
					t.Fatalf("%v: degree(%d) = %d, want %d", scheme, v, got, want[v])
				}
			}
		})
	}
}

func TestDegreeCountRejectsBadConfig(t *testing.T) {
	runApps(t, 1, 1, func(p *transport.Proc) error {
		if _, err := DegreeCount(p, DegreeCountConfig{}); err == nil {
			return fmt.Errorf("zero config accepted")
		}
		return nil
	})
}

// --- Connected components -------------------------------------------------

func ccOracle(cfg ConnectedComponentsConfig, world int) []uint64 {
	var all []graph.Edge
	for r := 0; r < world; r++ {
		g := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*7919+int64(r))
		all = append(all, graph.Collect(g, cfg.EdgesPerRank)...)
	}
	return graph.ConnectedComponentsSeq(all, 1<<uint(cfg.Scale))
}

func checkCCLabels(t *testing.T, cfg ConnectedComponentsConfig, world int, results []*ConnectedComponentsResult) {
	t.Helper()
	want := ccOracle(cfg, world)
	n := uint64(1) << uint(cfg.Scale)
	for v := uint64(0); v < n; v++ {
		r := graph.Owner(v, world)
		got := results[r].Labels[graph.LocalID(v, world)]
		if got != want[v] {
			t.Fatalf("label(%d) = %d, want %d", v, got, want[v])
		}
	}
}

func TestConnectedComponentsNoDelegates(t *testing.T) {
	cfg := ConnectedComponentsConfig{
		Mailbox:      ygm.Options{Scheme: machine.NodeRemote, Capacity: 128},
		Scale:        8,
		EdgesPerRank: 120,
		Params:       graph.Graph500,
		Seed:         3,
	}
	const world = 6
	results := make([]*ConnectedComponentsResult, world)
	var mu sync.Mutex
	runApps(t, 2, 3, func(p *transport.Proc) error {
		res, err := ConnectedComponents(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	if results[0].Delegates != 0 || results[0].Broadcasts != 0 {
		t.Fatalf("no-delegate run produced %d delegates, %d broadcasts",
			results[0].Delegates, results[0].Broadcasts)
	}
	checkCCLabels(t, cfg, world, results)
}

func TestConnectedComponentsWithDelegates(t *testing.T) {
	for _, scheme := range []machine.Scheme{machine.NoRoute, machine.NodeRemote, machine.NLNR} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := ConnectedComponentsConfig{
				Mailbox:      ygm.Options{Scheme: scheme, Capacity: 128},
				Scale:        8,
				EdgesPerRank: 150,
				Params:       graph.Graph500,
				DelegateFrac: 0.1,
				Seed:         4,
			}
			const world = 8
			results := make([]*ConnectedComponentsResult, world)
			var mu sync.Mutex
			runApps(t, 4, 2, func(p *transport.Proc) error {
				res, err := ConnectedComponents(p, cfg)
				if err != nil {
					return err
				}
				mu.Lock()
				results[p.Rank()] = res
				mu.Unlock()
				return nil
			})
			if results[0].Delegates == 0 {
				t.Fatal("expected delegates on a skewed RMAT graph")
			}
			var bcasts uint64
			for _, r := range results {
				bcasts += r.Broadcasts
			}
			if bcasts == 0 {
				t.Fatal("delegate synchronization should use broadcasts")
			}
			checkCCLabels(t, cfg, world, results)
		})
	}
}

// TestConnectedComponentsDelegateCountConsistent: every rank reports the
// same (global) delegate count.
func TestConnectedComponentsDelegateCountConsistent(t *testing.T) {
	cfg := ConnectedComponentsConfig{
		Mailbox:      ygm.Options{Scheme: machine.NLNR, Capacity: 64},
		Scale:        7,
		EdgesPerRank: 100,
		Params:       graph.Graph500,
		DelegateFrac: 0.05,
		Seed:         9,
	}
	counts := make([]int, 4)
	var mu sync.Mutex
	runApps(t, 2, 2, func(p *transport.Proc) error {
		res, err := ConnectedComponents(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		counts[p.Rank()] = res.Delegates
		mu.Unlock()
		return nil
	})
	for _, c := range counts {
		if c != counts[0] {
			t.Fatalf("delegate counts diverge: %v", counts)
		}
	}
}

// --- SpMV -------------------------------------------------------------------

func spmvOracle(cfg SpMVConfig, world, lastIter int) []float64 {
	n := uint64(1) << uint(cfg.Scale)
	var trips []spmat.Triplet
	for r := 0; r < world; r++ {
		g := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*104729+int64(r))
		for k := 0; k < cfg.EdgesPerRank; k++ {
			e := g.Next()
			trips = append(trips, spmat.Triplet{Row: e.V, Col: e.U, Val: MatrixValue(e.U, e.V)})
		}
	}
	x := make([]float64, n)
	for j := range x {
		x[j] = XValue(uint64(j), lastIter)
	}
	return spmat.SpMVSeq(trips, x)
}

func checkSpMV(t *testing.T, cfg SpMVConfig, world int, results []*SpMVResult) {
	t.Helper()
	want := spmvOracle(cfg, world, cfg.Iterations-1)
	n := uint64(1) << uint(cfg.Scale)
	for i := uint64(0); i < n; i++ {
		r := graph.Owner(i, world)
		got := results[r].Y[graph.LocalID(i, world)]
		if math.Abs(got-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("y[%d] = %g, want %g", i, got, want[i])
		}
	}
}

func TestSpMVMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		frac float64
	}{
		{"delegates", 0.1},
		{"noDelegates", 0},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := SpMVConfig{
				Mailbox:      ygm.Options{Scheme: machine.NLNR, Capacity: 128},
				Scale:        7,
				EdgesPerRank: 200,
				Params:       graph.Graph500,
				DelegateFrac: tc.frac,
				Seed:         6,
				Iterations:   2,
			}
			const world = 8
			results := make([]*SpMVResult, world)
			var mu sync.Mutex
			runApps(t, 4, 2, func(p *transport.Proc) error {
				res, err := SpMV(p, cfg)
				if err != nil {
					return err
				}
				mu.Lock()
				results[p.Rank()] = res
				mu.Unlock()
				return nil
			})
			if tc.frac > 0 && results[0].Delegates == 0 {
				t.Fatal("expected delegates")
			}
			if tc.frac == 0 && results[0].Delegates != 0 {
				t.Fatal("unexpected delegates")
			}
			checkSpMV(t, cfg, world, results)
		})
	}
}

// TestSpMVSchemesAgree: the result must not depend on the routing scheme.
func TestSpMVSchemesAgree(t *testing.T) {
	cfg := SpMVConfig{
		Scale:        6,
		EdgesPerRank: 150,
		Params:       graph.Uniform4,
		Seed:         8,
		Iterations:   1,
	}
	const world = 4
	var base []float64
	for _, scheme := range machine.Schemes {
		cfg.Mailbox = ygm.Options{Scheme: scheme, Capacity: 32}
		results := make([]*SpMVResult, world)
		var mu sync.Mutex
		runApps(t, 2, 2, func(p *transport.Proc) error {
			res, err := SpMV(p, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			results[p.Rank()] = res
			mu.Unlock()
			return nil
		})
		var flat []float64
		n := uint64(1) << uint(cfg.Scale)
		for i := uint64(0); i < n; i++ {
			flat = append(flat, results[graph.Owner(i, world)].Y[graph.LocalID(i, world)])
		}
		if base == nil {
			base = flat
			continue
		}
		for i := range base {
			if math.Abs(base[i]-flat[i]) > 1e-9 {
				t.Fatalf("%v: y[%d] = %g differs from baseline %g", scheme, i, flat[i], base[i])
			}
		}
	}
}

// --- BFS --------------------------------------------------------------------

func bfsOracle(cfg BFSConfig, world int) []uint64 {
	n := uint64(1) << uint(cfg.Scale)
	adj := make([][]uint64, n)
	for r := 0; r < world; r++ {
		g := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*15485863+int64(r))
		for k := 0; k < cfg.EdgesPerRank; k++ {
			e := g.Next()
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
	}
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[cfg.Root] = 0
	queue := []uint64{cfg.Root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == Unreached {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func TestBFSMatchesOracle(t *testing.T) {
	cfg := BFSConfig{
		Mailbox:      ygm.Options{Scheme: machine.NodeLocal, Capacity: 64},
		Scale:        8,
		EdgesPerRank: 250,
		Params:       graph.Graph500,
		Seed:         2,
		Root:         0,
	}
	const world = 6
	results := make([]*BFSResult, world)
	var mu sync.Mutex
	runApps(t, 3, 2, func(p *transport.Proc) error {
		res, err := BFS(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	want := bfsOracle(cfg, world)
	n := uint64(1) << uint(cfg.Scale)
	var wantVisited uint64
	for v := uint64(0); v < n; v++ {
		if want[v] != Unreached {
			wantVisited++
		}
		got := results[graph.Owner(v, world)].Dist[graph.LocalID(v, world)]
		if got != want[v] {
			t.Fatalf("dist(%d) = %d, want %d", v, got, want[v])
		}
	}
	if results[0].Visited != wantVisited {
		t.Fatalf("visited = %d, want %d", results[0].Visited, wantVisited)
	}
	if results[0].Visited < 2 {
		t.Fatal("degenerate test: root has no neighbors")
	}
}

// --- k-mer counting ----------------------------------------------------------

func TestKmerCountConservation(t *testing.T) {
	cfg := KmerCountConfig{
		Mailbox:      ygm.Options{Scheme: machine.NLNR, Capacity: 64},
		ReadsPerRank: 20,
		ReadLen:      40,
		K:            9,
	}
	const world = 4
	results := make([]*KmerCountResult, world)
	var mu sync.Mutex
	runApps(t, 2, 2, func(p *transport.Proc) error {
		res, err := KmerCount(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	var produced, counted uint64
	for _, r := range results {
		produced += r.TotalKmers
		for kmer, c := range r.Counts {
			if len(kmer) != cfg.K {
				t.Fatalf("stored k-mer %q has wrong length", kmer)
			}
			counted += c
		}
	}
	wantPerRank := uint64(cfg.ReadsPerRank * (cfg.ReadLen - cfg.K + 1))
	if produced != wantPerRank*world {
		t.Fatalf("produced %d k-mers, want %d", produced, wantPerRank*world)
	}
	if counted != produced {
		t.Fatalf("counted %d != produced %d", counted, produced)
	}
	// Ownership: every counted k-mer must live on its hash owner.
	for r, res := range results {
		for kmer := range res.Counts {
			if kmerOwner([]byte(kmer), world) != r {
				t.Fatalf("k-mer %q stored on rank %d, owner %d", kmer, r, kmerOwner([]byte(kmer), world))
			}
		}
	}
}

func TestKmerCountRejectsBadConfig(t *testing.T) {
	runApps(t, 1, 1, func(p *transport.Proc) error {
		if _, err := KmerCount(p, KmerCountConfig{K: 10, ReadLen: 5, ReadsPerRank: 1}); err == nil {
			return fmt.Errorf("read shorter than k accepted")
		}
		return nil
	})
}

// TestAppsAcrossExchangeStyles re-validates the oracle apps under the
// lazy-forwarding exchange (the figure benchmarks default to the
// paper's round-matched protocol, covered by the tests above): results
// must be identical regardless of exchange semantics.
func TestAppsAcrossExchangeStyles(t *testing.T) {
	for _, style := range []ygm.ExchangeStyle{ygm.LazyExchange, ygm.RoundExchange} {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			// Degree counting.
			dcfg := DegreeCountConfig{
				Mailbox:      ygm.Options{Scheme: machine.NLNR, Capacity: 64, Exchange: style},
				NumVertices:  1 << 9,
				EdgesPerRank: 300,
				NewGen: func(p *transport.Proc) graph.Generator {
					return graph.NewUniform(1<<9, 400+int64(p.Rank()))
				},
			}
			const world = 4
			results := make([]*DegreeCountResult, world)
			var mu sync.Mutex
			runApps(t, 2, 2, func(p *transport.Proc) error {
				res, err := DegreeCount(p, dcfg)
				if err != nil {
					return err
				}
				mu.Lock()
				results[p.Rank()] = res
				mu.Unlock()
				return nil
			})
			var all []graph.Edge
			for r := 0; r < world; r++ {
				all = append(all, graph.Collect(graph.NewUniform(1<<9, 400+int64(r)), 300)...)
			}
			want := graph.Degrees(all, 1<<9)
			for v := uint64(0); v < 1<<9; v++ {
				got := results[graph.Owner(v, world)].Degrees[graph.LocalID(v, world)]
				if got != want[v] {
					t.Fatalf("%v: degree(%d) = %d, want %d", style, v, got, want[v])
				}
			}

			// SpMV with delegates.
			scfg := SpMVConfig{
				Mailbox:      ygm.Options{Scheme: machine.NodeRemote, Capacity: 64, Exchange: style},
				Scale:        7,
				EdgesPerRank: 150,
				Params:       graph.Graph500,
				DelegateFrac: 0.1,
				Seed:         5,
				Iterations:   1,
			}
			sres := make([]*SpMVResult, world)
			runApps(t, 2, 2, func(p *transport.Proc) error {
				res, err := SpMV(p, scfg)
				if err != nil {
					return err
				}
				mu.Lock()
				sres[p.Rank()] = res
				mu.Unlock()
				return nil
			})
			checkSpMV(t, scfg, world, sres)

			// Connected components with delegates and broadcasts.
			ccfg := ConnectedComponentsConfig{
				Mailbox:      ygm.Options{Scheme: machine.NodeLocal, Capacity: 64, Exchange: style},
				Scale:        7,
				EdgesPerRank: 100,
				Params:       graph.Graph500,
				DelegateFrac: 0.1,
				Seed:         6,
			}
			cres := make([]*ConnectedComponentsResult, world)
			runApps(t, 2, 2, func(p *transport.Proc) error {
				res, err := ConnectedComponents(p, ccfg)
				if err != nil {
					return err
				}
				mu.Lock()
				cres[p.Rank()] = res
				mu.Unlock()
				return nil
			})
			checkCCLabels(t, ccfg, world, cres)
		})
	}
}
