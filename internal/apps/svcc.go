package apps

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// Message type bytes for the Shiloach-Vishkin protocol.
const (
	svMsgEdge  = 0 // [u, v]        store edge copy at owner(u)
	svMsgHook  = 1 // [v, label]    min label into f[v]
	svMsgQuery = 2 // [w, v]        ask owner(w) for f[w], reply to v
	svMsgReply = 3 // [v, label]    pointer-jump answer: f[v] = min(f[v], f[f[v]])
)

// SVConfig parameterizes the Shiloach-Vishkin-style connected components
// the paper points to as the asymptotically better alternative to its
// benchmark label propagation ("a Shiloach-Vishkin implementation could
// be implemented using YGM", Section V-B). Each round combines hooking
// (neighbor label mins) with one pointer-jumping shortcut implemented as
// a query/reply message pair through the mailbox — the receive callback
// of a query spawns the reply, the data-dependent pattern YGM exists
// for. Rounds are O(log |V|)-ish instead of O(diam(G)).
type SVConfig struct {
	Mailbox      ygm.Options
	Scale        int
	EdgesPerRank int
	Params       graph.RMATParams
	Seed         int64
	// MaxRounds bounds the iteration count (0 = until convergence).
	MaxRounds int
	// Edges, when non-nil, overrides generation: each rank contributes
	// the slice (used by tests to build adversarial topologies like long
	// paths).
	Edges func(p *transport.Proc) []graph.Edge
}

// SVResult is one rank's outcome.
type SVResult struct {
	// Labels[l] is the component label (the component's minimum vertex
	// id) of owned vertex l*P+rank.
	Labels []uint64
	// Rounds is the number of hook+shortcut rounds executed.
	Rounds  int
	Mailbox ygm.Stats
}

type svState struct {
	world   int
	f       []uint64 // owned vertex labels (parents)
	edges   []graph.Edge
	changed bool
}

func (st *svState) ownedF(v uint64) *uint64 {
	return &st.f[graph.LocalID(v, st.world)]
}

func (st *svState) minF(v, label uint64) {
	slot := st.ownedF(v)
	if label < *slot {
		*slot = label
		st.changed = true
	}
}

func (st *svState) handle(s ygm.Sender, payload []byte) {
	r := codec.NewReader(payload)
	typ, err := r.Byte()
	if err != nil {
		panic(fmt.Sprintf("apps: corrupt sv message: %v", err))
	}
	switch typ {
	case svMsgEdge:
		u, v := mustUvarint(r), mustUvarint(r)
		st.edges = append(st.edges, graph.Edge{U: u, V: v})
	case svMsgHook, svMsgReply:
		v, label := mustUvarint(r), mustUvarint(r)
		st.minF(v, label)
	case svMsgQuery:
		w, v := mustUvarint(r), mustUvarint(r)
		// Reply with f[w] so the asker can jump to its grandparent.
		s.Send(machine.Rank(graph.Owner(v, st.world)),
			ccEncode(svMsgReply, v, *st.ownedF(w)))
	default:
		panic(fmt.Sprintf("apps: unknown sv message type %d", typ))
	}
}

// ShiloachVishkinCC runs hook-and-shortcut connected components on one
// rank. All ranks must use an identical configuration.
func ShiloachVishkinCC(p *transport.Proc, cfg SVConfig) (*SVResult, error) {
	if cfg.Scale < 1 || cfg.EdgesPerRank < 0 {
		return nil, fmt.Errorf("apps: invalid sv config %+v", cfg)
	}
	if cfg.Edges == nil {
		if err := cfg.Params.Validate(); err != nil {
			return nil, err
		}
	}
	world := p.WorldSize()
	numVertices := uint64(1) << uint(cfg.Scale)
	st := &svState{
		world: world,
		f:     make([]uint64, graph.LocalCount(numVertices, world, int(p.Rank()))),
	}
	for l := range st.f {
		st.f[l] = graph.GlobalID(uint64(l), world, int(p.Rank()))
	}
	mb := ygm.New(p, st.handle, mailboxOptions(cfg.Mailbox)...)
	comm := collective.World(p)

	// Distribute edges to both endpoint owners.
	var myEdges []graph.Edge
	if cfg.Edges != nil {
		myEdges = cfg.Edges(p)
	} else {
		gen := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*49979687+int64(p.Rank()))
		myEdges = graph.Collect(gen, cfg.EdgesPerRank)
	}
	for _, e := range myEdges {
		if e.U >= numVertices || e.V >= numVertices {
			return nil, fmt.Errorf("apps: sv edge %v outside 2^%d vertices", e, cfg.Scale)
		}
		mb.Send(machine.Rank(graph.Owner(e.U, world)), ccEncode(svMsgEdge, e.U, e.V))
		mb.Send(machine.Rank(graph.Owner(e.V, world)), ccEncode(svMsgEdge, e.V, e.U))
	}
	mb.WaitEmpty()

	res := &SVResult{}
	cpm := p.Model().ComputePerMessage
	for round := 0; cfg.MaxRounds == 0 || round < cfg.MaxRounds; round++ {
		st.changed = false

		// Hooking: push this side's label across every stored edge.
		for _, e := range st.edges {
			p.Compute(cpm)
			mb.Send(machine.Rank(graph.Owner(e.V, world)),
				ccEncode(svMsgHook, e.V, *st.ownedF(e.U)))
		}
		mb.WaitEmpty()

		// Shortcut: one pointer jump per owned vertex, f[v] <- f[f[v]],
		// via query/reply through the owners.
		for l, fv := range st.f {
			v := graph.GlobalID(uint64(l), world, int(p.Rank()))
			if fv == v {
				continue
			}
			p.Compute(cpm)
			mb.Send(machine.Rank(graph.Owner(fv, world)), ccEncode(svMsgQuery, fv, v))
		}
		mb.WaitEmpty()

		res.Rounds++
		flag := uint64(0)
		if st.changed {
			flag = 1
		}
		if comm.AllreduceU64([]uint64{flag}, collective.MaxU64)[0] == 0 {
			break
		}
	}
	res.Labels = st.f
	res.Mailbox = mb.Stats()
	return res, nil
}
