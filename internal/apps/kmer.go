package apps

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// KmerCountConfig parameterizes the HipMer-inspired k-mer counting
// workload of Section II: ranks stream reads, extract k-mers, and send
// each to a hash-determined owner that counts occurrences — the same
// buffered many-to-many pattern the de Bruijn graph construction in
// HipMer uses, here carried by variable-length string payloads.
type KmerCountConfig struct {
	Mailbox ygm.Options
	// ReadsPerRank is how many synthetic reads each rank generates.
	ReadsPerRank int
	// ReadLen is the length of each read in bases.
	ReadLen int
	// K is the k-mer length. Reads come from the rank's deterministic
	// transport-seeded random source.
	K int
}

// KmerCountResult is one rank's outcome.
type KmerCountResult struct {
	// Counts maps each locally owned k-mer to its global frequency.
	Counts map[string]uint64
	// TotalKmers is the number of k-mer instances this rank extracted.
	TotalKmers uint64
	Mailbox    ygm.Stats
}

// kmerOwner hashes a k-mer to a rank (FNV-1a).
func kmerOwner(kmer []byte, world int) int {
	var h uint64 = 14695981039346656037
	for _, b := range kmer {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % uint64(world))
}

var bases = []byte("ACGT")

// KmerCount runs the k-mer counting workload on one rank.
func KmerCount(p *transport.Proc, cfg KmerCountConfig) (*KmerCountResult, error) {
	if cfg.K <= 0 || cfg.ReadLen < cfg.K || cfg.ReadsPerRank < 0 {
		return nil, fmt.Errorf("apps: invalid kmer config %+v", cfg)
	}
	world := p.WorldSize()
	counts := make(map[string]uint64)
	mb := ygm.New(p, func(s ygm.Sender, payload []byte) {
		kmer, err := codec.NewReader(payload).Bytes0()
		if err != nil {
			panic(fmt.Sprintf("apps: corrupt kmer message: %v", err))
		}
		counts[string(kmer)]++
	}, mailboxOptions(cfg.Mailbox)...)

	src := p.Rng()
	read := make([]byte, cfg.ReadLen)
	var total uint64
	for r := 0; r < cfg.ReadsPerRank; r++ {
		for i := range read {
			read[i] = bases[src.Intn(4)]
		}
		for i := 0; i+cfg.K <= cfg.ReadLen; i++ {
			kmer := read[i : i+cfg.K]
			total++
			w := codec.NewWriter(cfg.K + 2)
			w.Bytes0(kmer)
			mb.Send(machine.Rank(kmerOwner(kmer, world)), w.Bytes())
		}
	}
	mb.WaitEmpty()
	return &KmerCountResult{Counts: counts, TotalKmers: total, Mailbox: mb.Stats()}, nil
}
