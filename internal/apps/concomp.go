package apps

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// Message type bytes for the connected-components mailbox protocol.
const (
	ccMsgDegree   = 0 // [v]         degree increment for delegate detection
	ccMsgDelegate = 1 // [v]         broadcast: v is a delegate
	ccMsgEdge     = 2 // [a, b]      store edge (a owned non-delegate) at owner(a)
	ccMsgLabel    = 3 // [v, label]  min label into owned vertex v
	ccMsgImprove  = 4 // [d, label]  report delegate-copy improvement to owner(d)
	ccMsgSync     = 5 // [d, label]  broadcast: delegate d's label improved
)

// ConnectedComponentsConfig parameterizes the Section V-B experiment.
type ConnectedComponentsConfig struct {
	Mailbox ygm.Options
	// Scale: the graph has 2^Scale vertices.
	Scale int
	// EdgesPerRank is each rank's share of the RMAT stream.
	EdgesPerRank int
	// Params are the RMAT quadrant probabilities.
	Params graph.RMATParams
	// DelegateFrac sets the delegate threshold as a fraction of the
	// expected maximum degree (the paper intentionally picks thresholds
	// that yield *more* delegates than optimal to stress broadcasts).
	// Zero disables delegates entirely.
	DelegateFrac float64
	// Seed feeds the per-rank generators.
	Seed int64
	// MaxPasses bounds label-propagation passes (0 = until convergence).
	MaxPasses int
}

// ConnectedComponentsResult is one rank's outcome.
type ConnectedComponentsResult struct {
	// Labels[l] is the component label of locally owned vertex l*P+rank.
	// For delegated vertices the owner's entry is authoritative.
	Labels []uint64
	// Delegates is the number of delegated vertices (global, same on all
	// ranks).
	Delegates int
	// Passes is the number of label-propagation passes executed.
	Passes int
	// SetupEnd is this rank's virtual time when delegate detection and
	// edge distribution finished; the label-propagation passes the paper
	// times run after it.
	SetupEnd float64
	// Broadcasts is the number of Broadcast calls this rank issued.
	Broadcasts uint64
	Mailbox    ygm.Stats
}

// ccState carries the per-rank distributed state across handler
// invocations.
type ccState struct {
	p     *transport.Proc
	world int

	degrees   []uint64          // owned-vertex degrees (delegate detection)
	delegates map[uint64]bool   // global delegate set (replicated)
	delLabels map[uint64]uint64 // replicated delegate label copies

	labels []uint64 // owned non-delegate labels (indexed by local id)

	edges   []graph.Edge // stored edges: U owned non-delegate, V anything
	ddEdges []graph.Edge // delegate-delegate edges kept at the generator

	changed bool // any label improvement this pass
}

func (st *ccState) ownedLabel(v uint64) *uint64 {
	return &st.labels[graph.LocalID(v, st.world)]
}

// minInto lowers *slot to lbl, recording the change.
func (st *ccState) minInto(slot *uint64, lbl uint64) {
	if lbl < *slot {
		*slot = lbl
		st.changed = true
	}
}

// minDelegate lowers the local copy of delegate d's label.
func (st *ccState) minDelegate(d, lbl uint64) {
	if cur, ok := st.delLabels[d]; !ok || lbl < cur {
		if !ok {
			panic(fmt.Sprintf("apps: unknown delegate %d", d))
		}
		st.delLabels[d] = lbl
		st.changed = true
	}
}

// handle dispatches one mailbox message.
func (st *ccState) handle(s ygm.Sender, payload []byte) {
	r := codec.NewReader(payload)
	typ, err := r.Byte()
	if err != nil {
		panic(fmt.Sprintf("apps: corrupt cc message: %v", err))
	}
	switch typ {
	case ccMsgDegree:
		v := mustUvarint(r)
		st.degrees[graph.LocalID(v, st.world)]++
	case ccMsgDelegate:
		v := mustUvarint(r)
		st.delegates[v] = true
		st.delLabels[v] = v
	case ccMsgEdge:
		a, b := mustUvarint(r), mustUvarint(r)
		st.edges = append(st.edges, graph.Edge{U: a, V: b})
	case ccMsgLabel:
		v, lbl := mustUvarint(r), mustUvarint(r)
		st.minInto(st.ownedLabel(v), lbl)
	case ccMsgImprove, ccMsgSync:
		d, lbl := mustUvarint(r), mustUvarint(r)
		st.minDelegate(d, lbl)
	default:
		panic(fmt.Sprintf("apps: unknown cc message type %d", typ))
	}
}

func mustUvarint(r *codec.Reader) uint64 {
	v, err := r.Uvarint()
	if err != nil {
		panic(fmt.Sprintf("apps: corrupt message: %v", err))
	}
	return v
}

func ccEncode(typ byte, vals ...uint64) []byte {
	w := codec.NewWriter(1 + 10*len(vals))
	w.Byte(typ)
	for _, v := range vals {
		w.Uvarint(v)
	}
	return w.Bytes()
}

// ConnectedComponents runs the full distributed pipeline on one rank:
// generate the local edge share, detect delegates by a mailbox degree
// count, redistribute edges (colocating delegate edges), then iterate
// label-propagation passes with asynchronous-broadcast delegate
// synchronization until no label changes anywhere.
func ConnectedComponents(p *transport.Proc, cfg ConnectedComponentsConfig) (*ConnectedComponentsResult, error) {
	if cfg.Scale < 1 || cfg.EdgesPerRank < 0 {
		return nil, fmt.Errorf("apps: invalid cc config %+v", cfg)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	world := p.WorldSize()
	numVertices := uint64(1) << uint(cfg.Scale)
	st := &ccState{
		p:         p,
		world:     world,
		degrees:   make([]uint64, graph.LocalCount(numVertices, world, int(p.Rank()))),
		delegates: make(map[uint64]bool),
		delLabels: make(map[uint64]uint64),
	}
	mb := ygm.New(p, st.handle, mailboxOptions(cfg.Mailbox)...)
	comm := collective.World(p)

	// Phase 0: generate this rank's edge share.
	gen := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*7919+int64(p.Rank()))
	myEdges := graph.Collect(gen, cfg.EdgesPerRank)

	// Phase 1: delegate detection via mailbox degree counting.
	if cfg.DelegateFrac > 0 {
		for _, e := range myEdges {
			mb.Send(machine.Rank(graph.Owner(e.U, world)), ccEncode(ccMsgDegree, e.U))
			mb.Send(machine.Rank(graph.Owner(e.V, world)), ccEncode(ccMsgDegree, e.V))
		}
		mb.WaitEmpty()
		totalEdges := uint64(cfg.EdgesPerRank) * uint64(world)
		threshold := graph.DelegateThreshold(cfg.Params, cfg.Scale, totalEdges, cfg.DelegateFrac)
		for l, d := range st.degrees {
			if d >= threshold {
				v := graph.GlobalID(uint64(l), world, int(p.Rank()))
				st.delegates[v] = true
				st.delLabels[v] = v
				mb.Broadcast(ccEncode(ccMsgDelegate, v))
			}
		}
		mb.WaitEmpty()
	}

	// Phase 2: edge distribution. Non-delegate endpoints receive a copy
	// of the edge at their owner (both directions); edges with one
	// delegate endpoint are colocated with the non-delegate endpoint;
	// delegate-delegate edges stay with their generator.
	for _, e := range myEdges {
		uDel, vDel := st.delegates[e.U], st.delegates[e.V]
		switch {
		case uDel && vDel:
			st.ddEdges = append(st.ddEdges, e)
		case uDel:
			mb.Send(machine.Rank(graph.Owner(e.V, world)), ccEncode(ccMsgEdge, e.V, e.U))
		case vDel:
			mb.Send(machine.Rank(graph.Owner(e.U, world)), ccEncode(ccMsgEdge, e.U, e.V))
		default:
			mb.Send(machine.Rank(graph.Owner(e.U, world)), ccEncode(ccMsgEdge, e.U, e.V))
			mb.Send(machine.Rank(graph.Owner(e.V, world)), ccEncode(ccMsgEdge, e.V, e.U))
		}
	}
	mb.WaitEmpty()

	// Phase 3: initialize labels.
	st.labels = make([]uint64, len(st.degrees))
	for l := range st.labels {
		st.labels[l] = graph.GlobalID(uint64(l), world, int(p.Rank()))
	}

	// Phase 4: label-propagation passes.
	result := &ConnectedComponentsResult{Delegates: len(st.delegates), SetupEnd: p.Now()}
	cpm := p.Model().ComputePerMessage
	for pass := 0; cfg.MaxPasses == 0 || pass < cfg.MaxPasses; pass++ {
		st.changed = false
		passStart := make(map[uint64]uint64, len(st.delLabels))
		for d, l := range st.delLabels {
			passStart[d] = l
		}

		// Stream stored edges (a owned non-delegate, b anything).
		for _, e := range st.edges {
			p.Compute(cpm)
			a, b := e.U, e.V
			la := *st.ownedLabel(a)
			if st.delegates[b] {
				// Both directions resolve locally via the delegate copy.
				st.minDelegate(b, la)
				st.minInto(st.ownedLabel(a), st.delLabels[b])
			} else {
				mb.Send(machine.Rank(graph.Owner(b, world)), ccEncode(ccMsgLabel, b, la))
			}
		}
		// Delegate-delegate edges: purely local label mixing.
		for _, e := range st.ddEdges {
			p.Compute(cpm)
			st.minDelegate(e.U, st.delLabels[e.V])
			st.minDelegate(e.V, st.delLabels[e.U])
		}
		mb.WaitEmpty()

		// Report local delegate-copy improvements to the owners.
		for d, l := range st.delLabels {
			if l < passStart[d] && graph.Owner(d, world) != int(p.Rank()) {
				mb.Send(machine.Rank(graph.Owner(d, world)), ccEncode(ccMsgImprove, d, l))
			}
		}
		mb.WaitEmpty()

		// Owners broadcast improved delegate labels (the asynchronous
		// broadcast usage of Section V-B1).
		for d, l := range st.delLabels {
			if graph.Owner(d, world) == int(p.Rank()) && l < passStart[d] {
				mb.Broadcast(ccEncode(ccMsgSync, d, l))
			}
		}
		mb.WaitEmpty()

		result.Passes++
		flag := uint64(0)
		if st.changed {
			flag = 1
		}
		if comm.AllreduceU64([]uint64{flag}, collective.MaxU64)[0] == 0 {
			break
		}
	}

	// Copy authoritative delegate labels into the owned-label array so
	// results are uniform.
	for d, l := range st.delLabels {
		if graph.Owner(d, world) == int(p.Rank()) {
			st.labels[graph.LocalID(d, world)] = l
		}
	}
	result.Labels = st.labels
	result.Broadcasts = mb.Stats().Broadcasts
	result.Mailbox = mb.Stats()
	return result, nil
}
