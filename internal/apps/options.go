package apps

import "ygm/internal/ygm"

// mailboxOptions expands a fully assembled ygm.Options value into the
// equivalent Option list, so the app entry points — whose configs carry
// an Options struct — compose with ygm.New. It sets every Options
// field, making it a drop-in replacement for a wholesale overlay.
func mailboxOptions(o ygm.Options) []ygm.Option {
	return []ygm.Option{
		ygm.WithScheme(o.Scheme),
		ygm.WithCapacity(o.Capacity),
		ygm.WithPollEvery(o.PollEvery),
		ygm.WithExchange(o.Exchange),
		ygm.WithZeroCopyLocal(o.ZeroCopyLocal),
		ygm.WithCopyOnDeliver(o.CopyOnDeliver),
		ygm.WithTap(o.Tap),
		ygm.WithHooks(o.Hooks),
	}
}
