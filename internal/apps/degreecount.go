// Package apps implements the distributed applications of the paper's
// evaluation on top of the YGM mailbox: degree counting (Algorithm 1),
// connected components via label propagation with vertex delegates and
// asynchronous broadcast synchronization (Section V-B), sparse
// matrix–dense vector multiplication with delegates (Algorithm 2), plus
// a Graph500-style BFS and a HipMer-inspired k-mer counter that exercise
// the same mailbox patterns the paper's introduction motivates.
package apps

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// DegreeCountConfig parameterizes Algorithm 1.
type DegreeCountConfig struct {
	// Mailbox carries the routing scheme and capacity under test.
	Mailbox ygm.Options
	// NumVertices is the global vertex count; vertices are assigned to
	// ranks round-robin.
	NumVertices uint64
	// EdgesPerRank is how many edges each rank generates.
	EdgesPerRank int
	// BatchSize bounds how many edges are generated before waiting for
	// quiescence, isolating counting from generation as the paper does.
	// Zero means one batch.
	BatchSize int
	// NewGen constructs the rank-local edge generator (seeded per rank).
	NewGen func(p *transport.Proc) graph.Generator
	// JitterRounds/JitterPerRound, when positive, split edge generation
	// into JitterRounds rounds, each preceded by a uniformly random
	// amount of compute in [0, JitterPerRound) seconds — the rotating
	// load imbalance that motivates the asynchronous design: a
	// bulk-synchronous exchange pays the sum over rounds of the slowest
	// rank's jitter, the mailbox only the slowest rank's own total.
	// Jitter rounds are independent of BatchSize (the WaitEmpty cadence).
	JitterRounds   int
	JitterPerRound float64
}

// DegreeCountResult is one rank's outcome.
type DegreeCountResult struct {
	// Degrees[l] is the degree of the l-th locally owned vertex
	// (global id l*P + rank).
	Degrees []uint64
	// Mailbox is the final mailbox counter set.
	Mailbox ygm.Stats
}

// DegreeCount runs Algorithm 1 on one rank: stream the local share of the
// edge list, sending each endpoint to its owner, which increments a
// counter in the receive callback.
func DegreeCount(p *transport.Proc, cfg DegreeCountConfig) (*DegreeCountResult, error) {
	if cfg.NumVertices == 0 || cfg.EdgesPerRank < 0 || cfg.NewGen == nil {
		return nil, fmt.Errorf("apps: invalid degree-count config %+v", cfg)
	}
	world := p.WorldSize()
	degrees := make([]uint64, graph.LocalCount(cfg.NumVertices, world, int(p.Rank())))

	mb := ygm.New(p, func(s ygm.Sender, payload []byte) {
		v, err := codec.NewReader(payload).Uvarint()
		if err != nil {
			panic(fmt.Sprintf("apps: corrupt degree message: %v", err))
		}
		degrees[graph.LocalID(v, world)]++
	}, mailboxOptions(cfg.Mailbox)...)

	gen := cfg.NewGen(p)
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = cfg.EdgesPerRank
	}
	jitterChunk := 0
	if cfg.JitterRounds > 0 && cfg.JitterPerRound > 0 {
		jitterChunk = cfg.EdgesPerRank / cfg.JitterRounds
		if jitterChunk == 0 {
			jitterChunk = 1
		}
	}
	send := func(v uint64) {
		w := codec.NewWriter(10)
		w.Uvarint(v)
		mb.Send(machine.Rank(graph.Owner(v, world)), w.Bytes())
	}
	waits := 0
	for i := 0; i < cfg.EdgesPerRank; i++ {
		if jitterChunk > 0 && i%jitterChunk == 0 {
			p.Compute(p.Rng().Float64() * cfg.JitterPerRound)
		}
		e := gen.Next()
		send(e.U)
		send(e.V)
		if (i+1)%batch == 0 {
			mb.WaitEmpty()
			waits++
		}
	}
	// Terminal quiescence (Algorithm 1 line 13) unless the last batch
	// boundary already provided it.
	if cfg.EdgesPerRank == 0 || cfg.EdgesPerRank%batch != 0 {
		mb.WaitEmpty()
	}
	_ = waits
	return &DegreeCountResult{Degrees: degrees, Mailbox: mb.Stats()}, nil
}
