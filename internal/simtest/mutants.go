package simtest

import (
	"fmt"
	"sync/atomic"

	"ygm/internal/machine"
	"ygm/internal/ygm"
)

// Mutant names a deliberate fault injected through ygm.TestHooks. The
// mutation smoke test proves the oracle has teeth: every mutant must be
// detected (a non-nil RunCase error) within the default seed budget, or
// the harness is vacuously green.
type Mutant int

const (
	// MutantNone runs the clean tree.
	MutantNone Mutant = iota
	// MutantWrongHop routes every unicast record as if the scheme were
	// NodeRemote, regardless of the configured scheme. Messages still
	// arrive — NodeRemote routing is complete — but hop sequences break
	// path conformance (and, under NLNR, the channel constraint).
	MutantWrongHop
	// MutantDropDelivery silently discards exactly one delivery per
	// run, leaving all transport counters balanced: only the
	// exactly-once oracle can see it.
	MutantDropDelivery
	// MutantPrematureTerm forces rank 0's termination verdict to true
	// on its first evaluation, releasing WaitEmpty barriers while
	// messages may still be in flight.
	MutantPrematureTerm
	// MutantReorderDelivery holds the first record of every received
	// packet and dispatches it after the packet's other records,
	// inverting per-channel FIFO wherever two same-channel deliveries
	// were coalesced into one packet. Every exactly-once, path, and
	// termination counter stays balanced: only the synchronizability
	// oracle can see it.
	MutantReorderDelivery
	// MutantPhaseLeak stashes one unicast delivery and releases it at
	// the next termination-detection drain — one generation late, but
	// inside the same quiescence window, so the delivery oracle sees a
	// normal exactly-once run while per-channel delivery order breaks.
	MutantPhaseLeak
)

// Mutants lists the injectable faults (excluding MutantNone).
var Mutants = []Mutant{MutantWrongHop, MutantDropDelivery, MutantPrematureTerm, MutantReorderDelivery, MutantPhaseLeak}

// OrderingMutant reports whether m breaks only delivery ordering —
// invisible to the exactly-once oracle by design, detectable only by
// the synchronizability oracle. The mutation smoke test pins both
// halves of that claim.
func (m Mutant) OrderingMutant() bool {
	return m == MutantReorderDelivery || m == MutantPhaseLeak
}

// String names the mutant.
func (m Mutant) String() string {
	switch m {
	case MutantNone:
		return "none"
	case MutantWrongHop:
		return "wronghop"
	case MutantDropDelivery:
		return "drop"
	case MutantPrematureTerm:
		return "earlyterm"
	case MutantReorderDelivery:
		return "reorder"
	case MutantPhaseLeak:
		return "phaseleak"
	}
	return fmt.Sprintf("Mutant(%d)", int(m))
}

// ParseMutant inverts String.
func ParseMutant(s string) (Mutant, error) {
	for _, m := range append([]Mutant{MutantNone}, Mutants...) {
		if m.String() == s {
			return m, nil
		}
	}
	return MutantNone, fmt.Errorf("simtest: unknown mutant %q", s)
}

// hooks builds a fresh fault-injection state for one run. The returned
// pointer is shared by every rank's Options, so per-run mutant state
// (the single-drop latch) is global to the run.
func (m Mutant) hooks() *ygm.TestHooks {
	switch m {
	case MutantNone:
		return nil
	case MutantWrongHop:
		return &ygm.TestHooks{
			NextHop: func(t machine.Topology, s machine.Scheme, cur, dst machine.Rank) machine.Rank {
				return t.NextHop(machine.NodeRemote, cur, dst)
			},
		}
	case MutantDropDelivery:
		var dropped atomic.Bool
		return &ygm.TestHooks{
			DropDelivery: func(at machine.Rank, payload []byte) bool {
				return dropped.CompareAndSwap(false, true)
			},
		}
	case MutantPrematureTerm:
		return &ygm.TestHooks{
			ForceVerdict: func(balanced, unchanged bool) bool { return true },
		}
	case MutantReorderDelivery:
		return &ygm.TestHooks{
			ReorderPacket: func(at, src machine.Rank) bool { return true },
		}
	case MutantPhaseLeak:
		var leaked atomic.Bool
		return &ygm.TestHooks{
			LeakDelivery: func(at machine.Rank, payload []byte) bool {
				// Claim the first unicast delivery of the run (broadcast
				// copies are exempt from the per-channel FIFO the
				// synchronizability oracle checks, so leaking one would
				// be invisible to every oracle).
				if m, err := decodePayload(payload); err != nil || m.bcast {
					return false
				}
				return leaked.CompareAndSwap(false, true)
			},
		}
	}
	panic(fmt.Sprintf("simtest: unknown mutant %d", int(m)))
}
