package simtest

import (
	"fmt"
	"testing"

	"ygm/internal/machine"
)

// schedWorkerCounts are the forced M:N scheduler configurations the
// scheduled oracle sweep runs under: a single worker (maximal token
// contention — every wake is a queue handoff), a small pool, and the
// direct model as the control arm.
var schedWorkerCounts = []int{1, 3, -1}

// TestScheduledFuzz re-runs the full oracle suite — delivery semantics
// plus synchronizability certification — with the transport's M:N rank
// scheduler forced on, across every mailbox variant and routing scheme.
// The fuzz workloads are far below the scheduler's auto-enable
// threshold, so without the forced Workers the whole suite would only
// ever exercise the direct goroutine-per-rank model; this sweep is what
// pins the scheduler to the same delivery and reorder-equivalence
// contract.
func TestScheduledFuzz(t *testing.T) {
	const seeds = 12
	for _, workers := range schedWorkerCounts {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				for _, c := range combos(seed) {
					c.Workers = workers
					runAndReport(t, c)
				}
			}
		})
	}
}

// TestScheduledContainerWorkloads runs the container sweep (owner-side
// model oracle plus synchronizability) under the forced scheduler on
// every mailbox variant.
func TestScheduledContainerWorkloads(t *testing.T) {
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 3} {
				for seed := int64(1); seed <= 3; seed++ {
					c := baseContainerCase(seed, v, "sim")
					c.Workers = workers
					out := RunContainerCase(c)
					if err := out.Err(); err != nil {
						t.Fatalf("case %s: %v", c, err)
					}
					if !out.SynchChecked || out.Cert == nil {
						t.Fatalf("case %s: no synchronizability certificate", c)
					}
				}
			}
		})
	}
}

// TestScheduledCaseRoundtrip pins the repro-string form of the Workers
// knob: non-zero worker counts must round-trip through String/ParseCase
// (a shrunk scheduled failure has to reproduce as a scheduled run), and
// zero must stay invisible so existing repro commands are unchanged.
func TestScheduledCaseRoundtrip(t *testing.T) {
	c := FromSeed(7)
	c.Scheme = machine.Schemes[0]
	if got := c.String(); len(got) > 0 && containsWorkers(got) {
		t.Fatalf("zero Workers leaked into repro string %q", got)
	}
	c.Workers = 3
	parsed, err := ParseCase(c.String())
	if err != nil {
		t.Fatalf("ParseCase(%q): %v", c.String(), err)
	}
	if parsed != c {
		t.Fatalf("roundtrip mismatch:\n  want %+v\n  got  %+v", c, parsed)
	}
}

func containsWorkers(s string) bool {
	for i := 0; i+8 <= len(s); i++ {
		if s[i:i+8] == "workers=" {
			return true
		}
	}
	return false
}
