package simtest

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"ygm/internal/machine"
)

var (
	flagSeeds = flag.Int("seeds", 256, "number of random seeds TestSimFuzz explores (each seed runs every scheme x variant combination)")
	flagSeed  = flag.Int64("seed", -1, "run only this seed (all scheme x variant combinations)")
	flagCase  = flag.String("case", "", "run exactly one case, as printed by a shrunk failure repro")
	flagRetry = flag.Int("retries", 3, "confirmation attempts per shrink candidate")
)

// runAndReport runs one case; on failure it shrinks the case and fails
// the test with the single command that reproduces the minimized case.
func runAndReport(t *testing.T, c Case) {
	t.Helper()
	err := RunCase(c)
	if err == nil {
		return
	}
	small := Shrink(c, func(cand Case) bool { return StillFails(cand, *flagRetry) })
	smallErr := RunCase(small)
	t.Errorf("case %s failed:\n%v\n\nshrunk to %s (error: %v)\nreproduce: %s",
		c, err, small, smallErr, ReproCommand(small))
}

// combos enumerates every scheme x variant pair for one seed's workload.
func combos(seed int64) []Case {
	base := FromSeed(seed)
	out := make([]Case, 0, len(machine.Schemes)*len(Variants))
	for _, s := range machine.Schemes {
		for _, v := range Variants {
			c := base
			c.Scheme = s
			c.Variant = v
			out = append(out, c)
		}
	}
	return out
}

// TestSimFuzz is the schedule-exploration harness entry point: -seeds
// random workloads (default 256), each run under every routing scheme
// and mailbox variant, all checked by the delivery-semantics oracle.
//
// Reproduce a failure with the printed command, e.g.
//
//	go test ./internal/simtest -run 'TestSimFuzz$' -case='seed=7,topo=3x2,...'
func TestSimFuzz(t *testing.T) {
	if *flagCase != "" {
		c, err := ParseCase(*flagCase)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunCase(c); err != nil {
			t.Fatalf("case %s failed:\n%v", c, err)
		}
		return
	}
	seeds := *flagSeeds
	first := int64(0)
	if *flagSeed >= 0 {
		first, seeds = *flagSeed, 1
	}
	for seed := first; seed < first+int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			for _, c := range combos(seed) {
				runAndReport(t, c)
			}
		})
	}
}

// mutationBudget is how many seeds the smoke test may consume hunting
// for each mutant; ISSUE requires detection within the default budget.
const mutationBudget = 24

// TestMutationSmoke proves the oracles have teeth: each deliberately
// broken build (wrong next-hop, dropped delivery, premature termination
// verdict, reordered or leaked delivery) must be detected — a non-nil
// RunCase error — within the seed budget. A mutant surviving every
// workload means the harness is vacuously green.
//
// The two ordering mutants additionally pin the synchronizability
// oracle's exclusive jurisdiction: on every workload tried, the run must
// stay clean at the runtime and delivery-semantics level (the
// exactly-once oracle is blind to pure reorderings by design), and
// detection must come from the Synch verdict alone.
func TestMutationSmoke(t *testing.T) {
	for _, m := range Mutants {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			detected, tried := 0, 0
			for seed := int64(0); seed < mutationBudget; seed++ {
				for _, c := range combos(seed) {
					if m == MutantPrematureTerm && c.Variant == VariantSync {
						// The ALLTOALLV mailbox has no termination
						// detector to sabotage.
						continue
					}
					if m.OrderingMutant() {
						// The reorder and leak hooks live in the lazy
						// mailbox's packet and delivery paths. TTL=0 keeps
						// the leaked release from spawning new traffic
						// after the quiescence verdict; jitter off keeps
						// the runs cheap and reproducible.
						if c.Variant != VariantLazy {
							continue
						}
						c.TTL = 0
						c.Jitter = false
					}
					c.Mutant = m
					tried++
					if m.OrderingMutant() {
						out := RunCaseOutcome(c, nil)
						if out.Runtime != nil {
							t.Fatalf("ordering mutant %s broke case %s at the runtime level: %v", m, c, out.Runtime)
						}
						if out.Delivery != nil {
							t.Fatalf("ordering mutant %s is visible to the delivery oracle on %s — it is not a pure reordering: %v", m, c, out.Delivery)
						}
						if out.Synch != nil {
							detected++
						}
					} else if RunCase(c) != nil {
						detected++
					}
				}
				if detected > 0 {
					return
				}
			}
			t.Fatalf("mutant %s survived all %d workloads — the oracle is blind to it", m, tried)
		})
	}
}

// TestCrossValidateSync exercises the strongest synchronizability
// claim: for clean workloads, an actual synchronous (ALLTOALLV)
// execution of the lazy run's exact command script exists, and the two
// certificates agree on every message's application-phase window.
func TestCrossValidateSync(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 12; seed++ {
		base := FromSeed(seed)
		for _, s := range machine.Schemes {
			c := base
			c.Scheme = s
			if err := CrossValidateSync(c); err != nil {
				t.Fatalf("cross-validation failed for %s: %v", c, err)
			}
		}
	}
}

// TestCrossValidateSyncRejectsOrderingMutant checks the replay mode is
// not vacuous: a lazy run broken by an ordering mutant must fail
// cross-validation (via its own synchronizability verdict).
func TestCrossValidateSyncRejectsOrderingMutant(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < mutationBudget; seed++ {
		for _, s := range machine.Schemes {
			c := FromSeed(seed)
			c.Scheme = s
			c.Variant = VariantLazy
			c.TTL = 0
			c.Jitter = false
			c.Mutant = MutantReorderDelivery
			if err := CrossValidateSync(c); err != nil {
				if !strings.Contains(err.Error(), "lazy run failed") {
					t.Fatalf("cross-validation of %s failed outside the lazy run: %v", c, err)
				}
				return
			}
		}
	}
	t.Fatalf("no workload within the budget made cross-validation reject the reorder mutant")
}

// TestShrinkReorderRepro pins the shrinker on the new failure
// dimension: a synchronizability violation from the reorder mutant must
// minimize to a tiny command script (at most 4 sends per rank), so the
// printed repro is actually readable.
func TestShrinkReorderRepro(t *testing.T) {
	t.Parallel()
	var c Case
	found := false
	for seed := int64(0); seed < mutationBudget && !found; seed++ {
		for _, s := range machine.Schemes {
			cand := FromSeed(seed)
			cand.Scheme = s
			cand.Variant = VariantLazy
			cand.TTL = 0
			cand.Jitter = false
			cand.Mutant = MutantReorderDelivery
			if StillFails(cand, 2) {
				c, found = cand, true
				break
			}
		}
	}
	if !found {
		t.Fatalf("no failing reorder workload within the budget; mutation smoke should have caught this")
	}
	small := Shrink(c, func(cand Case) bool { return StillFails(cand, *flagRetry) })
	if !StillFails(small, *flagRetry) {
		t.Fatalf("shrunk case %s no longer fails", small)
	}
	if small.Phases*small.Msgs > 4 {
		t.Fatalf("reorder repro did not shrink to <= 4 commands per rank: %s", small)
	}
}

// TestCaseStringRoundTrip pins the repro string format: every derivable
// case must parse back to itself, including mutants.
func TestCaseStringRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		for _, c := range combos(seed) {
			c.Mutant = Mutant(int(seed) % (len(Mutants) + 1))
			back, err := ParseCase(c.String())
			if err != nil {
				t.Fatalf("ParseCase(%q): %v", c.String(), err)
			}
			if back != c {
				t.Fatalf("round trip changed the case:\n  in:  %s\n  out: %s", c, back)
			}
		}
	}
}

// TestParseCaseRejects pins the loud-failure behavior for stale or
// mistyped repro strings.
func TestParseCaseRejects(t *testing.T) {
	for _, bad := range []string{
		"seed=1,bogus=2",
		"seed=x",
		"seed=1,topo=3",
		"seed=1,topo=0x2,scheme=NLNR,variant=lazy,phases=1,msgs=1,cap=2,payload=0,ttl=0,bcast=0,jitter=0,testempty=0",
		"seed=1,scheme=Quantum",
		"seed=1,variant=telepathic",
		"seed=1,mutant=helpful",
		"no-equals-sign",
	} {
		if _, err := ParseCase(bad); err == nil {
			t.Errorf("ParseCase(%q) accepted a malformed case", bad)
		}
	}
}

// TestShrinkMinimizesMutantFailure runs the whole failure pipeline on a
// deterministic mutant: the shrinker must return a still-failing case no
// larger than the original, and the repro command must embed its exact
// string form.
func TestShrinkMinimizesMutantFailure(t *testing.T) {
	c := FromSeed(1)
	c.Scheme = machine.NoRoute
	c.Variant = VariantLazy
	c.Mutant = MutantDropDelivery
	if err := RunCase(c); err == nil {
		t.Skip("drop mutant did not fail on this workload; smoke test covers detection")
	}
	small := Shrink(c, func(cand Case) bool { return StillFails(cand, *flagRetry) })
	if !StillFails(small, *flagRetry) {
		t.Fatalf("shrunk case %s no longer fails", small)
	}
	if small.Nodes*small.Cores > c.Nodes*c.Cores || small.Phases > c.Phases || small.Msgs > c.Msgs {
		t.Fatalf("shrink grew the case: %s -> %s", c, small)
	}
	cmd := ReproCommand(small)
	if !strings.Contains(cmd, small.String()) || !strings.Contains(cmd, "go test ./internal/simtest") {
		t.Fatalf("repro command %q does not replay %s", cmd, small)
	}
	// The printed command must parse back to the same case.
	_, after, ok := strings.Cut(cmd, "-case='")
	if !ok {
		t.Fatalf("repro command %q has no -case flag", cmd)
	}
	back, err := ParseCase(strings.TrimSuffix(after, "'"))
	if err != nil || back != small {
		t.Fatalf("repro command round trip: %v (got %s, want %s)", err, back, small)
	}
}

// TestFromSeedCoversShapes checks the seed-derivation actually reaches
// the degenerate topologies the fuzzer exists to exercise.
func TestFromSeedCoversShapes(t *testing.T) {
	seen := map[[2]int]bool{}
	for seed := int64(0); seed < 2000; seed++ {
		c := FromSeed(seed)
		seen[[2]int{c.Nodes, c.Cores}] = true
	}
	for _, shape := range topoShapes {
		if !seen[shape] {
			t.Errorf("no seed below 2000 produced topology %dx%d", shape[0], shape[1])
		}
	}
}
