package simtest

import (
	"fmt"
	"sort"

	"ygm/internal/synch"
)

// CrossValidateSync replays one case's command script under the
// synchronous ALLTOALLV mailbox and cross-checks the two executions.
// It is the strongest form of the synchronizability claim the harness
// can make: the lazy (pseudo-asynchronous) run is not just certified
// reorder-equivalent to *some* synchronous execution — an actual
// synchronous execution of the very same command script exists, both
// runs pass every oracle, and both certificates place every message in
// the same application-phase window.
//
// The comparison is possible because the harness's command script is a
// deterministic function of the case alone: top-level sends draw from
// per-rank seeded generators in program order, and handler spawns
// derive key, destination, and filler from the parent key (see msgKey),
// so delivery interleaving — the one thing the variants differ in —
// cannot change what is sent. Spawn *order* at a rank still tracks
// delivery order, so the script is compared as a multiset, not a
// sequence.
func CrossValidateSync(c Case) error {
	lazy := c
	lazy.Variant = VariantLazy
	syn := c
	syn.Variant = VariantSync
	syn.TestEmptyBarrier = false

	outL, logL := runCaseLogged(lazy, nil)
	if err := outL.Err(); err != nil {
		return fmt.Errorf("crossval: lazy run failed: %v", err)
	}
	outS, logS := runCaseLogged(syn, nil)
	if err := outS.Err(); err != nil {
		return fmt.Errorf("crossval: sync replay failed: %v", err)
	}
	if err := compareScripts(logL, logS); err != nil {
		return fmt.Errorf("crossval: %v", err)
	}
	if err := comparePhaseWindows(outL.Cert, outS.Cert); err != nil {
		return fmt.Errorf("crossval: %v", err)
	}
	return nil
}

// scriptSend is one command of the script: what was sent, regardless of
// when.
type scriptSend struct {
	bcast bool
	dst   int32
}

// scriptOf extracts a run's command script from its event log: the
// send-command map and each rank's multiset of received message keys
// (sorted, so slices compare directly).
func scriptOf(l *synch.Log) (map[uint64]scriptSend, [][]uint64) {
	sends := make(map[uint64]scriptSend)
	recvs := make([][]uint64, l.World)
	for r, evs := range l.Events {
		for _, ev := range evs {
			switch ev.Kind {
			case synch.KindSend:
				sends[ev.Key] = scriptSend{dst: ev.Dst}
			case synch.KindBcast:
				sends[ev.Key] = scriptSend{bcast: true, dst: -1}
			case synch.KindRecv:
				recvs[r] = append(recvs[r], ev.Key)
			}
		}
	}
	for r := range recvs {
		sort.Slice(recvs[r], func(i, j int) bool { return recvs[r][i] < recvs[r][j] })
	}
	return sends, recvs
}

// compareScripts checks two runs issued the identical command script:
// the same send commands (key, kind, destination) and the same delivery
// multiset at every rank.
func compareScripts(a, b *synch.Log) error {
	if a.World != b.World {
		return fmt.Errorf("world size diverged: %d vs %d", a.World, b.World)
	}
	sa, ra := scriptOf(a)
	sb, rb := scriptOf(b)
	if len(sa) != len(sb) {
		return fmt.Errorf("command scripts diverged: %d vs %d sends", len(sa), len(sb))
	}
	for key, cmd := range sa {
		other, ok := sb[key]
		if !ok {
			return fmt.Errorf("command scripts diverged: message %s only sent by the lazy run", synch.MsgRef{Key: key, Copy: -1})
		}
		if cmd != other {
			return fmt.Errorf("command scripts diverged on message %s: lazy sent {bcast:%v dst:%d}, sync sent {bcast:%v dst:%d}",
				synch.MsgRef{Key: key, Copy: -1}, cmd.bcast, cmd.dst, other.bcast, other.dst)
		}
	}
	for r := range ra {
		if len(ra[r]) != len(rb[r]) {
			return fmt.Errorf("rank %d delivery sets diverged: %d vs %d deliveries", r, len(ra[r]), len(rb[r]))
		}
		for i := range ra[r] {
			if ra[r][i] != rb[r][i] {
				return fmt.Errorf("rank %d delivery sets diverged at message %s vs %s", r,
					synch.MsgRef{Key: ra[r][i], Copy: -1}, synch.MsgRef{Key: rb[r][i], Copy: -1})
			}
		}
	}
	return nil
}

// comparePhaseWindows checks that both certificates place every message
// instance between the same quiescence barriers. Round numbering is
// private to each certificate, but the barriers are the run's
// application phases, so the barrier-window index of a message — how
// many barriers complete before its round — is comparable across runs.
func comparePhaseWindows(a, b *synch.Certificate) error {
	if a == nil || b == nil {
		return fmt.Errorf("missing certificate (lazy: %v, sync: %v)", a != nil, b != nil)
	}
	if len(a.Barrier) != len(b.Barrier) {
		return fmt.Errorf("barrier counts diverged: %d vs %d", len(a.Barrier), len(b.Barrier))
	}
	if len(a.Phase) != len(b.Phase) {
		return fmt.Errorf("certified message sets diverged: %d vs %d instances", len(a.Phase), len(b.Phase))
	}
	for ref, round := range a.Phase {
		other, ok := b.Phase[ref]
		if !ok {
			return fmt.Errorf("message %s certified only by the lazy run", ref)
		}
		wa, wb := barrierWindow(a, round), barrierWindow(b, other)
		if wa != wb {
			return fmt.Errorf("message %s certified in barrier window %d by the lazy run but %d by the sync replay", ref, wa, wb)
		}
	}
	return nil
}

// barrierWindow counts the certificate's barriers scheduled strictly
// before round — the application phase the round falls in.
func barrierWindow(c *synch.Certificate, round int) int {
	n := 0
	for _, br := range c.Barrier {
		if br < round {
			n++
		}
	}
	return n
}
