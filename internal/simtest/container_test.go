package simtest

import (
	"testing"
)

// baseContainerCase is the sweep's workload shape: a multi-node topology
// with a tight mailbox capacity (frequent exchanges), chained visits at
// the maximum recordable depth, and enough ops per phase that every op
// kind appears.
func baseContainerCase(seed int64, v Variant, wire string) ContainerCase {
	return ContainerCase{
		Seed:     seed,
		Nodes:    3,
		Cores:    2,
		Variant:  v,
		Phases:   2,
		Ops:      14,
		Slots:    6,
		CKeys:    5,
		TTL:      2,
		Capacity: 4,
		Wire:     wire,
	}
}

// TestContainerWorkloads drives seeded random container scripts across
// all three mailbox variants on the simulated wire, checking every run
// against the container delivery model and the synchronizability oracle.
func TestContainerWorkloads(t *testing.T) {
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 5; seed++ {
				c := baseContainerCase(seed, v, "sim")
				out := RunContainerCase(c)
				if err := out.Err(); err != nil {
					t.Fatalf("case %s: %v", c, err)
				}
				if !out.SynchChecked || out.Cert == nil {
					t.Fatalf("case %s: no synchronizability certificate", c)
				}
			}
		})
	}
}

// TestContainerWorkloadsLocalWire repeats a slice of the sweep on the
// in-process real-time wire: real goroutine preemption replaces the
// simulator's deterministic schedule, so delivery interleavings the
// virtual clock never produces are exercised under the same oracles.
func TestContainerWorkloadsLocalWire(t *testing.T) {
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				c := baseContainerCase(seed, v, "local")
				if err := RunContainerCase(c).Err(); err != nil {
					t.Fatalf("case %s: %v", c, err)
				}
			}
		})
	}
}

// TestContainerOracleTeeth proves the model oracle actually bites:
// corrupting the ground truth in each dimension (a map value, a counter
// total, a phantom key) must surface as delivery violations.
func TestContainerOracleTeeth(t *testing.T) {
	c := baseContainerCase(1, VariantLazy, "sim")
	world := c.Nodes * c.Cores
	clean := RunContainerCase(c)
	if err := clean.Err(); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	corrupt := buildContainerModel(c, world)
	if len(corrupt.mapVals) == 0 || len(corrupt.counts) == 0 {
		t.Fatalf("workload too small to corrupt: %d map keys, %d counter keys",
			len(corrupt.mapVals), len(corrupt.counts))
	}
	for k := range corrupt.mapVals {
		corrupt.mapVals[k] = []byte("wrong")
		break
	}
	for k := range corrupt.counts {
		corrupt.counts[k] += 17
		break
	}
	corrupt.mapVals["phantom-key"] = []byte("never written")
	out := runContainerChecked(c, corrupt)
	if out.Runtime != nil {
		t.Fatalf("corrupted-model run died at runtime: %v", out.Runtime)
	}
	if out.Delivery == nil {
		t.Fatal("model corrupted in three places, yet the oracle reported a clean run")
	}
	if out.Synch != nil {
		t.Fatalf("model corruption must not disturb the synchronizability verdict: %v", out.Synch)
	}
}

// TestContainerCaseValidation pins the guard rails of the deterministic
// spawn-key encoding.
func TestContainerCaseValidation(t *testing.T) {
	ok := baseContainerCase(1, VariantLazy, "sim")
	if err := ok.validate(); err != nil {
		t.Fatalf("base case invalid: %v", err)
	}
	over := ok
	over.Ops = 64
	over.Phases = 2 // 128 recorded ops per rank
	if over.validate() == nil {
		t.Fatal("op-count overflow of the spawn-key encoding accepted")
	}
	deep := ok
	deep.TTL = 3
	if deep.validate() == nil {
		t.Fatal("chain depth 3 accepted; keys would collide")
	}
	wire := ok
	wire.Wire = "tcp"
	if wire.validate() == nil {
		t.Fatal("container sweep accepted a wire it cannot host in-process")
	}
}
