package simtest

import (
	"fmt"

	"ygm/internal/machine"
)

// SynchCell is one cell of the synchronizability sweep: a topology
// shape x routing scheme x mailbox variant combination with the
// per-verdict tallies of its seeded runs.
type SynchCell struct {
	Topo    string `json:"topo"`
	Scheme  string `json:"scheme"`
	Variant string `json:"variant"`
	// Runs = Synchronizable + Violations + RuntimeFailures.
	Runs            int `json:"runs"`
	Synchronizable  int `json:"synchronizable"`
	Violations      int `json:"violations"`
	RuntimeFailures int `json:"runtime_failures,omitempty"`
	// DeliveryFailures counts runs the exactly-once oracle rejected
	// (independent of the synchronizability verdict).
	DeliveryFailures int `json:"delivery_failures,omitempty"`
	// MaxRounds is the largest certified round schedule seen in the cell.
	MaxRounds int `json:"max_rounds"`
	// FirstViolation is the repro string and verdict of the cell's first
	// synchronizability violation, empty when all runs certified.
	FirstViolation string `json:"first_violation,omitempty"`
}

// SynchSummary aggregates a whole sweep; cmd/ygm-bench serializes it as
// the nightly per-shape synchronizability artifact.
type SynchSummary struct {
	SeedsPerCell     int         `json:"seeds_per_cell"`
	Runs             int         `json:"runs"`
	Synchronizable   int         `json:"synchronizable"`
	Violations       int         `json:"violations"`
	RuntimeFailures  int         `json:"runtime_failures,omitempty"`
	DeliveryFailures int         `json:"delivery_failures,omitempty"`
	Cells            []SynchCell `json:"cells"`
}

// SweepSynch runs the synchronizability oracle across every topology
// shape x routing scheme x mailbox variant cell, seedsPerCell seeded
// clean workloads each, and tallies the verdicts. Every certificate a
// run produces has already passed independent validation inside
// RunCaseOutcome, so Synchronizable counts machine-checked rounds, not
// checker say-so.
func SweepSynch(seedsPerCell int, base int64) SynchSummary {
	sum := SynchSummary{SeedsPerCell: seedsPerCell}
	for _, shape := range topoShapes {
		for _, scheme := range machine.Schemes {
			for _, variant := range Variants {
				cell := SynchCell{
					Topo:    fmt.Sprintf("%dx%d", shape[0], shape[1]),
					Scheme:  scheme.String(),
					Variant: variant.String(),
				}
				for s := 0; s < seedsPerCell; s++ {
					c := FromSeed(base + int64(s))
					c.Nodes, c.Cores = shape[0], shape[1]
					c.Scheme, c.Variant = scheme, variant
					out := RunCaseOutcome(c, nil)
					cell.Runs++
					if out.Runtime != nil {
						cell.RuntimeFailures++
						continue
					}
					if out.Delivery != nil {
						cell.DeliveryFailures++
					}
					if out.Synch != nil {
						cell.Violations++
						if cell.FirstViolation == "" {
							cell.FirstViolation = fmt.Sprintf("%s: %v", c, out.Synch)
						}
						continue
					}
					cell.Synchronizable++
					if out.Cert.Rounds > cell.MaxRounds {
						cell.MaxRounds = out.Cert.Rounds
					}
				}
				sum.Runs += cell.Runs
				sum.Synchronizable += cell.Synchronizable
				sum.Violations += cell.Violations
				sum.RuntimeFailures += cell.RuntimeFailures
				sum.DeliveryFailures += cell.DeliveryFailures
				sum.Cells = append(sum.Cells, cell)
			}
		}
	}
	return sum
}
