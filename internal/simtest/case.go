// Package simtest is the seeded simulation-fuzz harness for the YGM
// mailbox stack. Each Case describes one randomized workload — a
// topology, a routing scheme, a mailbox variant, and a seeded pattern of
// sends, broadcasts, handler-spawned follow-ups, and mid-run WaitEmpty
// barriers — executed under optional delivery-delay injection while a
// delivery-semantics oracle (see oracle.go) records every logical send
// and checks, post-run: exactly-once delivery to the correct rank with
// intact payloads, hop sequences conforming to machine.Path, remote
// transmissions staying inside each scheme's channel set, packet
// conservation, and that no WaitEmpty barrier returned while messages of
// its phase were still in flight.
//
// Cases are value types with a compact string form (String/ParseCase) so
// a failing run — after the shrinker minimizes it — reproduces from a
// single printed `go test` command.
package simtest

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"ygm/internal/machine"
)

// Variant selects which mailbox implementation a Case exercises.
type Variant int

const (
	// VariantLazy is the asynchronous lazy-forwarding Mailbox.
	VariantLazy Variant = iota
	// VariantRound is the round-matched RoundMailbox (the paper's
	// production protocol).
	VariantRound
	// VariantSync is the ALLTOALLV-backed SyncMailbox driven by
	// ExchangeUntilQuiet.
	VariantSync
)

// Variants lists all mailbox variants the harness covers.
var Variants = []Variant{VariantLazy, VariantRound, VariantSync}

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantLazy:
		return "lazy"
	case VariantRound:
		return "round"
	case VariantSync:
		return "sync"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// ParseVariant inverts String.
func ParseVariant(s string) (Variant, error) {
	for _, v := range Variants {
		if v.String() == s {
			return v, nil
		}
	}
	return VariantLazy, fmt.Errorf("simtest: unknown variant %q", s)
}

// Case is one fully-specified fuzz workload. The zero value is invalid;
// derive cases with FromSeed or ParseCase.
type Case struct {
	// Seed feeds every random choice of the workload (destinations,
	// payload sizes, broadcast picks, jitter) and the transport's
	// per-rank sources.
	Seed int64
	// Nodes x Cores is the simulated topology.
	Nodes, Cores int
	// Scheme is the routing protocol under test.
	Scheme machine.Scheme
	// Variant is the mailbox implementation under test.
	Variant Variant
	// Phases is the number of send-then-barrier rounds each rank runs;
	// every phase ends in a WaitEmpty (or ExchangeUntilQuiet) barrier.
	Phases int
	// Msgs is the number of application sends per rank per phase.
	Msgs int
	// Capacity is the mailbox capacity (small values force frequent
	// communication contexts / rounds).
	Capacity int
	// MaxPayload bounds the random filler appended to each message.
	MaxPayload int
	// TTL is the maximum handler-spawn depth: a delivered unicast with
	// ttl>0 spawns one follow-up send with ttl-1 (data-dependent
	// traffic, as in graph traversals). 0 disables spawning.
	TTL int
	// BcastEvery makes roughly one in BcastEvery sends a Broadcast;
	// 0 disables broadcasts.
	BcastEvery int
	// Jitter enables seeded random extra delivery delays, perturbing
	// which packets are physically present at each poll or drain.
	Jitter bool
	// TestEmptyBarrier drives the lazy variant's barriers through
	// nonblocking TestEmpty polling instead of WaitEmpty (ignored by
	// the other variants).
	TestEmptyBarrier bool
	// Workers forces the transport's M:N rank scheduler worker count
	// (transport.Config.Workers): 0 keeps the transport's auto policy,
	// >0 forces the scheduler on with that many workers, -1 forces the
	// direct goroutine-per-rank model.
	Workers int
	// Mutant injects a deliberate fault (see mutants.go); MutantNone
	// for clean runs.
	Mutant Mutant
}

// topoShapes are the cluster shapes the fuzzer draws from: the paper's
// N>C and C>1 sweet spot plus every degenerate edge (single node, single
// core, N<C, N=C, non-divisible layer sizes).
var topoShapes = [][2]int{
	{1, 1}, {2, 1}, {1, 2}, {1, 3}, {3, 1},
	{2, 2}, {3, 2}, {2, 3}, {4, 2}, {3, 3},
	{4, 3}, {5, 3}, {2, 4}, {4, 4}, {6, 2},
}

// FromSeed derives the workload dimensions of a Case from a seed. The
// caller chooses Scheme and Variant (the fuzz loop enumerates all
// combinations for every seed).
func FromSeed(seed int64) Case {
	rng := rand.New(rand.NewSource(seed*2654435761 + 0x9e3779b9))
	shape := topoShapes[rng.Intn(len(topoShapes))]
	caps := []int{2, 4, 8, 16, 64}
	bcast := []int{0, 4, 7}
	return Case{
		Seed:             seed,
		Nodes:            shape[0],
		Cores:            shape[1],
		Phases:           1 + rng.Intn(3),
		Msgs:             4 + rng.Intn(21),
		Capacity:         caps[rng.Intn(len(caps))],
		MaxPayload:       rng.Intn(33),
		TTL:              rng.Intn(3),
		BcastEvery:       bcast[rng.Intn(len(bcast))],
		Jitter:           rng.Intn(2) == 1,
		TestEmptyBarrier: rng.Intn(4) == 0,
	}
}

// Topo returns the Case's topology.
func (c Case) Topo() machine.Topology { return machine.New(c.Nodes, c.Cores) }

// String renders the Case in its canonical compact form, parseable by
// ParseCase. The mutant is included only when set, so clean repro
// strings stay clean.
func (c Case) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d,topo=%dx%d,scheme=%s,variant=%s,phases=%d,msgs=%d,cap=%d,payload=%d,ttl=%d,bcast=%d,jitter=%d,testempty=%d",
		c.Seed, c.Nodes, c.Cores, c.Scheme, c.Variant, c.Phases, c.Msgs,
		c.Capacity, c.MaxPayload, c.TTL, c.BcastEvery, b2i(c.Jitter), b2i(c.TestEmptyBarrier))
	if c.Workers != 0 {
		fmt.Fprintf(&b, ",workers=%d", c.Workers)
	}
	if c.Mutant != MutantNone {
		fmt.Fprintf(&b, ",mutant=%s", c.Mutant)
	}
	return b.String()
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

// ParseCase inverts String. Unknown keys are rejected so stale repro
// commands fail loudly rather than silently running a different case.
func ParseCase(s string) (Case, error) {
	var c Case
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("simtest: malformed case field %q", kv)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		case "topo":
			n, cs, ok := strings.Cut(v, "x")
			if !ok {
				return c, fmt.Errorf("simtest: malformed topo %q", v)
			}
			if c.Nodes, err = strconv.Atoi(n); err == nil {
				c.Cores, err = strconv.Atoi(cs)
			}
		case "scheme":
			c.Scheme, err = machine.ParseScheme(v)
		case "variant":
			c.Variant, err = ParseVariant(v)
		case "phases":
			c.Phases, err = strconv.Atoi(v)
		case "msgs":
			c.Msgs, err = strconv.Atoi(v)
		case "cap":
			c.Capacity, err = strconv.Atoi(v)
		case "payload":
			c.MaxPayload, err = strconv.Atoi(v)
		case "ttl":
			c.TTL, err = strconv.Atoi(v)
		case "bcast":
			c.BcastEvery, err = strconv.Atoi(v)
		case "jitter":
			c.Jitter = v == "1"
		case "testempty":
			c.TestEmptyBarrier = v == "1"
		case "workers":
			c.Workers, err = strconv.Atoi(v)
		case "mutant":
			c.Mutant, err = ParseMutant(v)
		default:
			return c, fmt.Errorf("simtest: unknown case field %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("simtest: case field %q: %v", kv, err)
		}
	}
	if err := c.validate(); err != nil {
		return c, err
	}
	return c, nil
}

// validate rejects dimension combinations the harness cannot run.
func (c Case) validate() error {
	if c.Nodes <= 0 || c.Cores <= 0 {
		return fmt.Errorf("simtest: invalid topology %dx%d", c.Nodes, c.Cores)
	}
	if c.Phases <= 0 || c.Msgs < 0 || c.Capacity <= 0 || c.MaxPayload < 0 || c.TTL < 0 || c.BcastEvery < 0 {
		return fmt.Errorf("simtest: invalid workload dimensions in %q", c.String())
	}
	// Deterministic spawn keys (see msgKey in oracle.go) pack the parent
	// sequence number into 8-bit fields: per-rank top-level send counts
	// must stay below 128 and spawn depth below 3. FromSeed stays far
	// inside both bounds.
	if c.Phases*c.Msgs > 127 {
		return fmt.Errorf("simtest: %d sends per rank overflow the deterministic spawn-key encoding (max 127)", c.Phases*c.Msgs)
	}
	if c.TTL > 2 {
		return fmt.Errorf("simtest: ttl %d overflows the deterministic spawn-key encoding (max 2)", c.TTL)
	}
	return nil
}
