package simtest

import "fmt"

// StillFails reports whether c fails at least once in attempts runs.
// Failures can depend on host goroutine scheduling (the virtual clock is
// deterministic, but packet physical-presence interleavings are not), so
// the shrinker confirms each candidate with several attempts rather than
// trusting a single run.
func StillFails(c Case, attempts int) bool {
	for i := 0; i < attempts; i++ {
		if RunCase(c) != nil {
			return true
		}
	}
	return false
}

// Shrink greedily minimizes a failing case: it tries one reduction at a
// time (smaller topology, fewer phases, fewer messages, features
// disabled) and keeps any candidate for which fails returns true,
// repeating until no reduction survives. The result is the smallest
// still-failing case found, ready for ReproCommand.
func Shrink(c Case, fails func(Case) bool) Case {
	for steps := 0; steps < 200; steps++ {
		improved := false
		for _, cand := range reductions(c) {
			if fails(cand) {
				c = cand
				improved = true
				break
			}
		}
		if !improved {
			return c
		}
	}
	return c
}

// reductions proposes simpler variants of c, most aggressive first.
func reductions(c Case) []Case {
	var out []Case
	add := func(m Case) {
		if m != c && m.validate() == nil {
			out = append(out, m)
		}
	}
	m := c
	m.Nodes = (c.Nodes + 1) / 2
	add(m)
	m = c
	m.Nodes = c.Nodes - 1
	add(m)
	m = c
	m.Cores = (c.Cores + 1) / 2
	add(m)
	m = c
	m.Cores = c.Cores - 1
	add(m)
	m = c
	m.Phases = 1
	add(m)
	m = c
	m.Phases = c.Phases - 1
	add(m)
	m = c
	m.Msgs = c.Msgs / 2
	add(m)
	m = c
	m.Msgs = c.Msgs - 1
	add(m)
	m = c
	m.Capacity = c.Capacity / 2
	add(m)
	m = c
	m.TTL = 0
	add(m)
	m = c
	m.BcastEvery = 0
	add(m)
	m = c
	m.MaxPayload = 0
	add(m)
	m = c
	m.Jitter = false
	add(m)
	m = c
	m.TestEmptyBarrier = false
	add(m)
	return out
}

// ReproCommand renders the single go test invocation that replays c.
func ReproCommand(c Case) string {
	return fmt.Sprintf("go test ./internal/simtest -run 'TestSimFuzz$' -case='%s'", c)
}
