package simtest

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"ygm/internal/codec"
	"ygm/internal/container"
	"ygm/internal/machine"
	"ygm/internal/synch"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// ContainerCase is one randomized distributed-container workload: every
// rank runs a seeded script of Map puts/erases, Counter bumps (with
// chained owner-side visits), read-your-writes fetches, and phase
// barriers, on the engine variant and wire under test. Two oracles judge
// the run:
//
//   - a container delivery oracle: the script is deterministic, so every
//     rank independently replays all ranks' scripts into a sequential
//     model and checks the final distributed state (ForAll sweeps, owner
//     placement, global sizes, TopK, fetch replies) against it, plus
//     transport packet conservation;
//   - the PR 7 synchronizability oracle: container operations that run
//     user code on the owner carry their (origin, seq) message identity
//     in the visitor argument, so the run's MSC is recorded exactly as
//     for raw mailbox workloads and checked for reorder-equivalence to
//     synchronous rounds.
//
// Raw fire-and-forget operations (AsyncInsert/AsyncErase/AsyncAdd) have
// no owner-side code to report their delivery, so they are judged by the
// model oracle only; their packets still count toward conservation.
type ContainerCase struct {
	Seed         int64
	Nodes, Cores int
	Variant      Variant
	// Phases is the number of script-then-Barrier rounds.
	Phases int
	// Ops is the number of container operations per rank per phase.
	Ops int
	// Slots is the size of each rank's private Map key namespace.
	Slots int
	// CKeys is the size of the shared Counter key space.
	CKeys int
	// TTL is the maximum chained-visit depth of a Counter bump.
	TTL int
	// Capacity is the mailbox capacity (small forces communication).
	Capacity int
	// Wire selects the transport backend: "" or "sim", or "local".
	Wire string
	// Workers forces the transport's M:N rank scheduler worker count
	// (transport.Config.Workers); 0 keeps the auto policy.
	Workers int
}

func (c ContainerCase) String() string {
	wire := c.Wire
	if wire == "" {
		wire = "sim"
	}
	s := fmt.Sprintf("seed=%d,topo=%dx%d,variant=%s,phases=%d,ops=%d,slots=%d,ckeys=%d,ttl=%d,cap=%d,wire=%s",
		c.Seed, c.Nodes, c.Cores, c.Variant, c.Phases, c.Ops, c.Slots, c.CKeys, c.TTL, c.Capacity, wire)
	if c.Workers != 0 {
		s += fmt.Sprintf(",workers=%d", c.Workers)
	}
	return s
}

func (c ContainerCase) validate() error {
	if c.Nodes <= 0 || c.Cores <= 0 || c.Phases <= 0 || c.Ops <= 0 ||
		c.Slots <= 0 || c.CKeys <= 0 || c.Capacity <= 0 || c.TTL < 0 {
		return fmt.Errorf("simtest: invalid container case %q", c)
	}
	// Chained-visit keys reuse the harness's deterministic spawn-key
	// packing (see msgKey): per-rank recorded ops stay below 128 and the
	// chain depth below 3 so child keys never collide.
	if c.Phases*c.Ops > 127 {
		return fmt.Errorf("simtest: %d container ops per rank overflow the spawn-key encoding (max 127)", c.Phases*c.Ops)
	}
	if c.TTL > 2 {
		return fmt.Errorf("simtest: container ttl %d overflows the spawn-key encoding (max 2)", c.TTL)
	}
	if c.Wire != "" && c.Wire != "sim" && c.Wire != "local" {
		return fmt.Errorf("simtest: container case wire %q (have sim, local)", c.Wire)
	}
	return nil
}

// Container op kinds. The visit-backed kinds carry their message
// identity to the owner and feed the synchronizability log; the raw
// kinds exercise the engine's plain opcodes under the model oracle.
const (
	copPut      = iota // Map put via visitor
	copRawPut          // Map AsyncInsert
	copErase           // Map erase via visitor
	copRawErase        // Map AsyncErase
	copBump            // Counter add via visitor, chaining TTL hops
	copRawBump         // Counter AsyncAdd
	copFetch           // Map AsyncVisitFetch, reply checked
)

// cop is one scripted container operation.
type cop struct {
	kind int
	slot int    // Map slot (put/erase/fetch) or Counter key index (bump)
	val  uint64 // value / delta seed
	ttl  int    // copBump chain depth
	seq  uint64 // recorded ops: this op's synch sequence number
	rec  bool   // whether the op is synch-recorded
	// Fetch expectation, captured from the generated program-order state
	// (read-your-writes: only this rank writes its slots, and requests
	// ride the same FIFO mailbox channel as the writes before them).
	expectPresent bool
	expectVal     []byte
}

func mkeyBytes(rank machine.Rank, slot int) []byte {
	return []byte(fmt.Sprintf("m%d-%d", rank, slot))
}

func ckeyBytes(idx int) []byte {
	return []byte(fmt.Sprintf("c%02d", idx))
}

func mvalBytes(rank machine.Rank, slot int, val uint64) []byte {
	return []byte(fmt.Sprintf("v%d.%d.%d", rank, slot, val))
}

// genContainerScript derives rank's deterministic operation script, one
// slice per phase, tracking the rank's own Map slots in program order so
// fetch expectations are exact.
func genContainerScript(c ContainerCase, rank machine.Rank) [][]cop {
	rng := rand.New(rand.NewSource(c.Seed*1000003 + int64(rank)*8191 + 29))
	slotVal := make([][]byte, c.Slots) // nil = absent
	phases := make([][]cop, c.Phases)
	var seq uint64
	for ph := range phases {
		ops := make([]cop, 0, c.Ops)
		for i := 0; i < c.Ops; i++ {
			op := cop{val: uint64(rng.Intn(1 << 16))}
			switch k := rng.Intn(10); {
			case k < 2:
				op.kind = copPut
			case k < 4:
				op.kind = copRawPut
			case k == 4:
				op.kind = copErase
			case k == 5:
				op.kind = copRawErase
			case k < 8:
				op.kind = copBump
			case k == 8:
				op.kind = copRawBump
			default:
				op.kind = copFetch
			}
			switch op.kind {
			case copBump, copRawBump:
				op.slot = rng.Intn(c.CKeys)
				op.ttl = rng.Intn(c.TTL + 1)
			default:
				op.slot = rng.Intn(c.Slots)
			}
			switch op.kind {
			case copPut, copRawPut:
				slotVal[op.slot] = mvalBytes(rank, op.slot, op.val)
			case copErase, copRawErase:
				slotVal[op.slot] = nil
			case copFetch:
				op.expectPresent = slotVal[op.slot] != nil
				op.expectVal = slotVal[op.slot]
			}
			if op.rec = op.kind != copRawPut && op.kind != copRawErase && op.kind != copRawBump; op.rec {
				op.seq = seq << 1 // even: top-level keys (msgKey discipline)
				seq++
			}
			ops = append(ops, op)
		}
		phases[ph] = ops
	}
	return phases
}

// containerModel is the sequential ground truth of one case: the final
// global Map and Counter contents, computed by replaying every rank's
// script.
type containerModel struct {
	mapVals map[string][]byte
	counts  map[string]uint64
}

func buildContainerModel(c ContainerCase, world int) containerModel {
	part := container.HashPartitioner{}
	m := containerModel{
		mapVals: make(map[string][]byte),
		counts:  make(map[string]uint64),
	}
	for r := 0; r < world; r++ {
		rank := machine.Rank(r)
		for _, ops := range genContainerScript(c, rank) {
			for _, op := range ops {
				switch op.kind {
				case copPut, copRawPut:
					m.mapVals[string(mkeyBytes(rank, op.slot))] = mvalBytes(rank, op.slot, op.val)
				case copErase, copRawErase:
					delete(m.mapVals, string(mkeyBytes(rank, op.slot)))
				case copBump, copRawBump:
					delta := 1 + op.val%5
					key := msgKey{origin: rank, seq: op.seq}
					if op.kind == copRawBump {
						// Raw adds never chain; identity is irrelevant.
						m.counts[string(ckeyBytes(op.slot))] += delta
						continue
					}
					idx, ttl := op.slot, op.ttl
					for {
						kb := ckeyBytes(idx)
						m.counts[string(kb)] += delta
						if ttl == 0 {
							break
						}
						owner := part.Owner(kb, world)
						key = spawnKey(owner, key)
						idx = int(spawnHash(key) % uint64(c.CKeys))
						ttl--
					}
				}
			}
		}
	}
	return m
}

// RunContainerCase executes one container workload and returns the
// per-oracle verdicts (Outcome.Cert is the synchronous round schedule on
// success, as for RunCaseOutcome).
func RunContainerCase(c ContainerCase) Outcome {
	if err := c.validate(); err != nil {
		return Outcome{Runtime: err}
	}
	return runContainerChecked(c, buildContainerModel(c, machine.New(c.Nodes, c.Cores).WorldSize()))
}

// runContainerChecked runs c against an explicit ground-truth model —
// the oracle's own teeth test corrupts the model to prove mismatches are
// reported.
func runContainerChecked(c ContainerCase, model containerModel) Outcome {
	topo := machine.New(c.Nodes, c.Cores)
	world := topo.WorldSize()
	rec := synch.NewRecorder(world)
	vlogs := make([][]string, world) // goroutine-confined, merged post-run

	cfgOpts := []transport.ConfigOption{
		transport.WithSeed(c.Seed),
		transport.WithTrace(rec),
		transport.WithWorkers(c.Workers),
	}
	if c.Wire == "local" {
		cfgOpts = append(cfgOpts, transport.WithWire(transport.LocalWire{}))
	} else {
		cfgOpts = append(cfgOpts, transport.WithWatchdogInterval(watchdogInterval))
	}
	cfg := transport.NewConfig(topo, cfgOpts...)
	_, err := transport.Run(cfg, func(p *transport.Proc) error {
		return runContainerRank(p, c, model, rec, &vlogs[p.Rank()])
	})
	if err != nil {
		return Outcome{Runtime: err}
	}

	out := Outcome{SynchChecked: true}
	var viols []string
	for _, vs := range vlogs {
		viols = append(viols, vs...)
	}
	log := rec.Log()
	if log.PktSent != log.PktRecv {
		viols = append(viols, fmt.Sprintf(
			"packet conservation violated: %d sent, %d received", log.PktSent, log.PktRecv))
	}
	if len(viols) > 0 {
		if len(viols) > 12 {
			viols = viols[:12]
		}
		out.Delivery = fmt.Errorf("container oracle: %d violation(s):\n  %s",
			len(viols), strings.Join(viols, "\n  "))
	}
	v := synch.Check(log)
	switch {
	case !v.OK:
		out.Synch = fmt.Errorf("synchronizability: %v", v.Violation)
	default:
		if err := synch.ValidateCertificate(log, v.Cert); err != nil {
			out.Synch = fmt.Errorf("synchronizability: certificate failed independent validation: %v", err)
		} else {
			out.Cert = v.Cert
		}
	}
	return out
}

// Visitor argument layouts (encoded with internal/codec):
//
//	put:   uvarint origin, seq; bytes0 value
//	erase: uvarint origin, seq
//	bump:  uvarint origin, seq, delta; byte ttl
//	fetch: uvarint origin, seq
func encodeIdent(w *codec.Writer, k msgKey) {
	w.Uvarint(uint64(k.origin))
	w.Uvarint(k.seq)
}

func decodeIdent(r *codec.Reader) (msgKey, error) {
	origin, err := r.Uvarint()
	if err != nil {
		return msgKey{}, err
	}
	seq, err := r.Uvarint()
	if err != nil {
		return msgKey{}, err
	}
	return msgKey{origin: machine.Rank(origin), seq: seq}, nil
}

// runContainerRank is the SPMD body of one rank.
func runContainerRank(p *transport.Proc, c ContainerCase, model containerModel,
	rec *synch.Recorder, viol *[]string) error {
	me := p.Rank()
	world := p.WorldSize()
	part := container.HashPartitioner{}
	fail := func(format string, args ...any) {
		if len(*viol) < 12 {
			*viol = append(*viol, fmt.Sprintf("rank %d: ", me)+fmt.Sprintf(format, args...))
		}
	}

	opts := []ygm.Option{ygm.WithCapacity(c.Capacity)}
	switch c.Variant {
	case VariantLazy:
		opts = append(opts, ygm.WithExchange(ygm.LazyExchange))
	case VariantRound:
		opts = append(opts, ygm.WithExchange(ygm.RoundExchange))
	case VariantSync:
		opts = append(opts, ygm.WithExchange(ygm.SyncExchange))
	default:
		return fmt.Errorf("simtest: unknown variant %v", c.Variant)
	}
	eng := container.NewEngine(p, opts...)
	m := container.NewMap(eng, nil)
	cnt := container.NewCounter(eng, nil)

	mustIdent := func(r *codec.Reader) msgKey {
		k, err := decodeIdent(r)
		if err != nil {
			panic(fmt.Sprintf("simtest: rank %d: corrupt container visitor arg: %v", me, err))
		}
		return k
	}
	vPut := m.RegisterVisitor(func(m *container.Map, key, arg []byte) {
		r := codec.NewReader(arg)
		k := mustIdent(r)
		rec.Recv(me, k.key64())
		val, err := r.Bytes0()
		if err != nil {
			panic(fmt.Sprintf("simtest: rank %d: corrupt put arg: %v", me, err))
		}
		m.LocalPut(key, val)
	})
	vErase := m.RegisterVisitor(func(m *container.Map, key, arg []byte) {
		rec.Recv(me, mustIdent(codec.NewReader(arg)).key64())
		m.LocalErase(key)
	})
	// vBump accumulates on the owner and, while ttl lasts, chains another
	// visit whose key and identity derive from this hop's identity — the
	// same walk buildContainerModel replays.
	var vBump uint64
	vBump = cnt.RegisterVisitor(func(cn *container.Counter, key, arg []byte) {
		r := codec.NewReader(arg)
		k := mustIdent(r)
		rec.Recv(me, k.key64())
		delta, err := r.Uvarint()
		if err != nil {
			panic(fmt.Sprintf("simtest: rank %d: corrupt bump arg: %v", me, err))
		}
		ttl, err := r.Byte()
		if err != nil {
			panic(fmt.Sprintf("simtest: rank %d: corrupt bump arg: %v", me, err))
		}
		cn.LocalAdd(key, delta)
		if ttl == 0 {
			return
		}
		child := spawnKey(me, k)
		nkey := ckeyBytes(int(spawnHash(child) % uint64(c.CKeys)))
		rec.Spawn(me, child.key64(), cn.Owner(nkey), k.key64())
		w := codec.NewWriter(24)
		encodeIdent(w, child)
		w.Uvarint(delta)
		w.Byte(ttl - 1)
		cn.AsyncVisit(vBump, nkey, w.Bytes())
	})
	fGet := m.RegisterFetcher(func(m *container.Map, key, arg []byte, reply *codec.Writer) {
		rec.Recv(me, mustIdent(codec.NewReader(arg)).key64())
		val, ok := m.LocalGet(key)
		if !ok {
			reply.Byte(0)
			return
		}
		reply.Byte(1)
		reply.Bytes0(val)
	})

	script := genContainerScript(c, me)
	for ph, ops := range script {
		for _, op := range ops {
			switch op.kind {
			case copPut:
				key := mkeyBytes(me, op.slot)
				k := msgKey{origin: me, seq: op.seq}
				rec.Send(me, k.key64(), m.Owner(key))
				w := codec.NewWriter(32)
				encodeIdent(w, k)
				w.Bytes0(mvalBytes(me, op.slot, op.val))
				m.AsyncVisit(vPut, key, w.Bytes())
			case copRawPut:
				m.AsyncInsert(mkeyBytes(me, op.slot), mvalBytes(me, op.slot, op.val))
			case copErase:
				key := mkeyBytes(me, op.slot)
				k := msgKey{origin: me, seq: op.seq}
				rec.Send(me, k.key64(), m.Owner(key))
				w := codec.NewWriter(16)
				encodeIdent(w, k)
				m.AsyncVisit(vErase, key, w.Bytes())
			case copRawErase:
				m.AsyncErase(mkeyBytes(me, op.slot))
			case copBump:
				key := ckeyBytes(op.slot)
				k := msgKey{origin: me, seq: op.seq}
				rec.Send(me, k.key64(), cnt.Owner(key))
				w := codec.NewWriter(24)
				encodeIdent(w, k)
				w.Uvarint(1 + op.val%5)
				w.Byte(byte(op.ttl))
				cnt.AsyncVisit(vBump, key, w.Bytes())
			case copRawBump:
				cnt.AsyncAdd(ckeyBytes(op.slot), 1+op.val%5)
			case copFetch:
				key := mkeyBytes(me, op.slot)
				k := msgKey{origin: me, seq: op.seq}
				rec.Send(me, k.key64(), m.Owner(key))
				w := codec.NewWriter(16)
				encodeIdent(w, k)
				op := op // capture this op's expectation
				m.AsyncVisitFetch(fGet, key, w.Bytes(), func(reply []byte) {
					r := codec.NewReader(reply)
					present, err := r.Byte()
					if err != nil {
						fail("fetch %s: corrupt reply: %v", k, err)
						return
					}
					if (present == 1) != op.expectPresent {
						fail("fetch %s of slot %d: present=%v, want %v",
							k, op.slot, present == 1, op.expectPresent)
						return
					}
					if present == 0 {
						return
					}
					val, err := r.Bytes0()
					if err != nil {
						fail("fetch %s: corrupt reply value: %v", k, err)
						return
					}
					if !bytes.Equal(val, op.expectVal) {
						fail("fetch %s of slot %d: value %q, want %q (read-your-writes violated)",
							k, op.slot, val, op.expectVal)
					}
				})
			}
		}
		eng.Barrier()
		rec.Barrier(me, uint64(ph))
	}

	// Final-state validation against the sequential model: every local
	// entry must match the model and live on its partitioner-assigned
	// owner (no extras), every model entry owned here must be present (no
	// holes), and the collective sizes and TopK must agree globally.
	localMap := 0
	m.ForAll(func(key string, val []byte) {
		localMap++
		if own := part.Owner([]byte(key), world); own != me {
			fail("map key %q stored on rank %d, owner is %d", key, me, own)
		}
		want, ok := model.mapVals[key]
		switch {
		case !ok:
			fail("map key %q exists but the model erased or never wrote it", key)
		case !bytes.Equal(val, want):
			fail("map key %q = %q, model has %q", key, val, want)
		}
	})
	for key, want := range model.mapVals {
		if part.Owner([]byte(key), world) != me {
			continue
		}
		if got, ok := m.LocalGet([]byte(key)); !ok {
			fail("map key %q missing from its owner shard", key)
		} else if !bytes.Equal(got, want) {
			fail("map key %q = %q, model has %q", key, got, want)
		}
	}
	if got, want := m.Size(), uint64(len(model.mapVals)); got != want {
		fail("map size %d, model has %d keys", got, want)
	}
	localCnt := 0
	cnt.ForAll(func(key string, count uint64) {
		localCnt++
		if own := part.Owner([]byte(key), world); own != me {
			fail("counter key %q stored on rank %d, owner is %d", key, me, own)
		}
		if want := model.counts[key]; count != want {
			fail("counter key %q = %d, model has %d", key, count, want)
		}
	})
	for key := range model.counts {
		if part.Owner([]byte(key), world) != me {
			continue
		}
		if cnt.LocalCount([]byte(key)) == 0 {
			fail("counter key %q missing from its owner shard", key)
		}
	}
	if got, want := cnt.Size(), uint64(len(model.counts)); got != want {
		fail("counter size %d, model has %d keys", got, want)
	}
	wantTop := modelTopK(model.counts, 3)
	gotTop := cnt.TopK(3)
	if len(gotTop) != len(wantTop) {
		fail("TopK returned %d entries, model has %d", len(gotTop), len(wantTop))
	} else {
		for i := range wantTop {
			if gotTop[i] != wantTop[i] {
				fail("TopK[%d] = %v, model has %v", i, gotTop[i], wantTop[i])
			}
		}
	}
	return nil
}

// modelTopK is the sequential reference for Counter.TopK.
func modelTopK(counts map[string]uint64, k int) []container.KeyCount {
	all := make([]container.KeyCount, 0, len(counts))
	for key, n := range counts {
		all = append(all, container.KeyCount{Key: key, Count: n})
	}
	return trimModelTopK(all, k)
}

func trimModelTopK(kc []container.KeyCount, k int) []container.KeyCount {
	// Same order as container.trimTopK: count descending, key ascending.
	for i := 1; i < len(kc); i++ {
		for j := i; j > 0; j-- {
			a, b := kc[j-1], kc[j]
			if a.Count > b.Count || (a.Count == b.Count && a.Key < b.Key) {
				break
			}
			kc[j-1], kc[j] = b, a
		}
	}
	if len(kc) > k {
		kc = kc[:k]
	}
	return kc
}
