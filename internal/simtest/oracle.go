package simtest

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/synch"
	"ygm/internal/transport"
)

// msgKey identifies one logical application message: the rank that
// created it and that rank's private sequence number. Broadcast copies
// of one Broadcast share a key.
//
// Sequence numbers are structured so the whole command script is
// deterministic across mailbox variants (the cross-validation replay
// depends on it): top-level sends take even numbers (i<<1, allocated in
// program order), and a handler-spawned child derives its number from
// its parent as parent.seq<<8 | parent.origin<<1 | 1 — injective for
// per-rank send counts below 128 and spawn depths (TTL) up to 2, which
// Case.validate enforces.
type msgKey struct {
	origin machine.Rank
	seq    uint64
}

func (k msgKey) String() string { return fmt.Sprintf("%d#%d", k.origin, k.seq) }

// key64 packs the key for the synchronizability recorder.
func (k msgKey) key64() uint64 { return synch.Key64(k.origin, k.seq) }

// spawnKey derives the deterministic key of a handler-spawned child
// message at rank me reacting to parent. The encoding keeps child keys
// disjoint from top-level (even) sequence numbers and injective across
// parents, so a lazy run and its synchronous replay allocate identical
// keys no matter the delivery interleaving.
func spawnKey(me machine.Rank, parent msgKey) msgKey {
	return msgKey{origin: me, seq: parent.seq<<8 | uint64(parent.origin)<<1 | 1}
}

// spawnHash expands a spawn key into the child's destination and filler
// choices (splitmix64 finalizer), replacing the shared per-rank rng
// whose draw order would depend on delivery order.
func spawnHash(k msgKey) uint64 {
	x := uint64(k.origin)*0x9e3779b97f4a7c15 + k.seq + 0x632be59bd9b4e019
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// payload wire format (encoded with internal/codec):
//
//	byte    kind (0 unicast, 1 broadcast)
//	uvarint origin, seq, phase
//	uvarint ttl, dst            (unicast only)
//	bytes0  filler              (content derived from origin/seq)
//
// The filler is a deterministic function of the key, so the oracle can
// verify integrity without storing payload copies.
const (
	payloadUnicast = 0
	payloadBcast   = 1
)

// msgMeta is one decoded payload header.
type msgMeta struct {
	key   msgKey
	bcast bool
	phase int
	ttl   int
	dst   machine.Rank
	fill  int
	// fillOK reports whether the filler bytes matched the deterministic
	// pattern for the key (payload integrity).
	fillOK bool
}

func fillByte(k msgKey, i int) byte {
	return byte(uint64(k.origin)*131 + k.seq*31 + uint64(i)*7 + 0x5a)
}

// encodePayload renders one logical message.
func encodePayload(k msgKey, bcast bool, phase, ttl int, dst machine.Rank, fill int) []byte {
	w := codec.NewWriter(16 + fill)
	if bcast {
		w.Byte(payloadBcast)
	} else {
		w.Byte(payloadUnicast)
	}
	w.Uvarint(uint64(k.origin))
	w.Uvarint(k.seq)
	w.Uvarint(uint64(phase))
	if !bcast {
		w.Uvarint(uint64(ttl))
		w.Uvarint(uint64(dst))
	}
	w.Uvarint(uint64(fill))
	for i := 0; i < fill; i++ {
		w.Byte(fillByte(k, i))
	}
	return w.Bytes()
}

// decodePayload parses a payload header and verifies the filler.
func decodePayload(b []byte) (msgMeta, error) {
	var m msgMeta
	r := codec.NewReader(b)
	kind, err := r.Byte()
	if err != nil {
		return m, err
	}
	switch kind {
	case payloadUnicast:
	case payloadBcast:
		m.bcast = true
	default:
		return m, fmt.Errorf("simtest: unknown payload kind %d", kind)
	}
	origin, err := r.Uvarint()
	if err != nil {
		return m, err
	}
	seq, err := r.Uvarint()
	if err != nil {
		return m, err
	}
	phase, err := r.Uvarint()
	if err != nil {
		return m, err
	}
	m.key = msgKey{origin: machine.Rank(origin), seq: seq}
	m.phase = int(phase)
	m.dst = machine.Nil
	if !m.bcast {
		ttl, err := r.Uvarint()
		if err != nil {
			return m, err
		}
		dst, err := r.Uvarint()
		if err != nil {
			return m, err
		}
		m.ttl = int(ttl)
		m.dst = machine.Rank(dst)
	}
	fill, err := r.Uvarint()
	if err != nil {
		return m, err
	}
	m.fill = int(fill)
	m.fillOK = true
	for i := 0; i < m.fill; i++ {
		c, err := r.Byte()
		if err != nil {
			return m, err
		}
		if c != fillByte(m.key, i) {
			m.fillOK = false
		}
	}
	if r.Remaining() != 0 {
		return m, fmt.Errorf("simtest: %d trailing payload bytes", r.Remaining())
	}
	return m, nil
}

// sendRec is one logical send, recorded by its origin.
type sendRec struct {
	key   msgKey
	bcast bool
	dst   machine.Rank // unicast only
	phase int
}

// hopEdge is one record movement: the record left rank at for rank hop.
type hopEdge struct {
	key      msgKey
	at, hop  machine.Rank
	bcast    bool
	parseErr string
}

// delivRec is one handler invocation.
type delivRec struct {
	key      msgKey
	at       machine.Rank
	bcast    bool
	dst      machine.Rank
	phase    int
	fillOK   bool
	parseErr string
}

// rankLog is the goroutine-confined event log of one rank. Each rank's
// goroutine appends to its own log only; logs are merged after every
// goroutine has joined, so no locking is needed.
type rankLog struct {
	sends    []sendRec
	hops     []hopEdge
	delivs   []delivRec
	barriers []string // violations observed at barrier return
	seq      uint64   // next message sequence number for this origin
}

// oracle records every logical send, hop, and delivery of one run and
// checks the delivery semantics afterwards. It implements ygm.Tap
// (record-movement events) and transport.Tracer (packet conservation).
type oracle struct {
	topo   machine.Topology
	scheme machine.Scheme
	ranks  []rankLog

	// expected/delivered count final deliveries per phase: a unicast
	// send adds 1 to expected (self-sends included), a broadcast adds
	// WorldSize-1. The barrier invariant is delivered == expected for
	// every phase at or before the barrier's.
	expected  []atomic.Uint64
	delivered []atomic.Uint64

	// pktSent/pktRecv count transport packets (all tags); a clean run
	// conserves them — anything sent is received before the run ends.
	pktSent atomic.Uint64
	pktRecv atomic.Uint64

	// remote caches each rank's allowed remote partner set.
	remote []map[machine.Rank]bool
}

func newOracle(topo machine.Topology, scheme machine.Scheme, phases int) *oracle {
	o := &oracle{
		topo:      topo,
		scheme:    scheme,
		ranks:     make([]rankLog, topo.WorldSize()),
		expected:  make([]atomic.Uint64, phases),
		delivered: make([]atomic.Uint64, phases),
		remote:    make([]map[machine.Rank]bool, topo.WorldSize()),
	}
	for r := range o.remote {
		set := make(map[machine.Rank]bool)
		for _, p := range topo.RemotePartners(scheme, machine.Rank(r)) {
			set[p] = true
		}
		o.remote[r] = set
	}
	return o
}

// RecordQueued implements ygm.Tap: invoked on the queueing rank's
// goroutine for every record entering a coalescing buffer.
func (o *oracle) RecordQueued(at, hop, dst machine.Rank, bcast bool, payload []byte) {
	e := hopEdge{at: at, hop: hop, bcast: bcast}
	m, err := decodePayload(payload)
	if err != nil {
		e.parseErr = err.Error()
	} else {
		e.key = m.key
	}
	o.ranks[at].hops = append(o.ranks[at].hops, e)
}

// PacketSent implements transport.Tracer.
func (o *oracle) PacketSent(src, dst machine.Rank, tag transport.Tag, size int, sent, arrive float64) {
	o.pktSent.Add(1)
}

// PacketReceived implements transport.Tracer.
func (o *oracle) PacketReceived(src, dst machine.Rank, tag transport.Tag, size int, now float64) {
	o.pktRecv.Add(1)
}

// recordSend logs one top-level send on the origin's goroutine, before
// the mailbox call, and bumps the phase expectation. Top-level keys take
// even sequence numbers; see msgKey.
func (o *oracle) recordSend(origin machine.Rank, bcast bool, dst machine.Rank, phase int) msgKey {
	rk := &o.ranks[origin]
	key := msgKey{origin: origin, seq: rk.seq << 1}
	rk.seq++
	o.recordSendKeyed(key, bcast, dst, phase)
	return key
}

// recordSendKeyed logs one send under a caller-chosen key (handler
// spawns derive theirs from the parent, so no counter is consumed).
func (o *oracle) recordSendKeyed(key msgKey, bcast bool, dst machine.Rank, phase int) {
	rk := &o.ranks[key.origin]
	rk.sends = append(rk.sends, sendRec{key: key, bcast: bcast, dst: dst, phase: phase})
	if bcast {
		o.expected[phase].Add(uint64(o.topo.WorldSize() - 1))
	} else {
		o.expected[phase].Add(1)
	}
}

// recordDelivery logs one handler invocation on the delivering rank's
// goroutine and returns the decoded header for spawn decisions.
func (o *oracle) recordDelivery(at machine.Rank, payload []byte) (msgMeta, bool) {
	d := delivRec{at: at}
	m, err := decodePayload(payload)
	if err != nil {
		d.parseErr = err.Error()
		o.ranks[at].delivs = append(o.ranks[at].delivs, d)
		return m, false
	}
	d.key, d.bcast, d.dst, d.phase, d.fillOK = m.key, m.bcast, m.dst, m.phase, m.fillOK
	o.ranks[at].delivs = append(o.ranks[at].delivs, d)
	if m.phase < len(o.delivered) {
		o.delivered[m.phase].Add(1)
	}
	return m, true
}

// checkBarrier runs on a rank's goroutine the moment its phase-p barrier
// (WaitEmpty, TestEmpty-true, or ExchangeUntilQuiet) returns: every
// phase at or before p must be fully delivered, or the barrier released
// the rank while messages were in flight.
func (o *oracle) checkBarrier(at machine.Rank, phase int) {
	for q := 0; q <= phase && q < len(o.expected); q++ {
		exp, got := o.expected[q].Load(), o.delivered[q].Load()
		if exp != got {
			o.ranks[at].barriers = append(o.ranks[at].barriers, fmt.Sprintf(
				"rank %d returned from its phase-%d barrier with phase %d incomplete: %d of %d deliveries",
				at, phase, q, got, exp))
		}
	}
}

// validate merges the per-rank logs and checks every delivery-semantics
// property. It must be called only after transport.Run has returned (all
// rank goroutines joined). A nil return means the run conformed.
func (o *oracle) validate() error {
	var errs []string
	fail := func(format string, args ...any) {
		if len(errs) < 12 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
	}

	// Merge logs.
	sends := make(map[msgKey]sendRec)
	for r := range o.ranks {
		for _, s := range o.ranks[r].sends {
			sends[s.key] = s
		}
		for _, v := range o.ranks[r].barriers {
			fail("%s", v)
		}
	}
	delivs := make(map[msgKey][]delivRec)
	for r := range o.ranks {
		for _, d := range o.ranks[r].delivs {
			if d.parseErr != "" {
				fail("rank %d delivered a corrupt payload: %s", r, d.parseErr)
				continue
			}
			if !d.fillOK {
				fail("rank %d delivered message %s with mangled filler bytes", r, d.key)
			}
			delivs[d.key] = append(delivs[d.key], d)
		}
	}
	edges := make(map[msgKey][]hopEdge)
	for r := range o.ranks {
		for _, e := range o.ranks[r].hops {
			if e.parseErr != "" {
				fail("rank %d queued a corrupt record: %s", r, e.parseErr)
				continue
			}
			edges[e.key] = append(edges[e.key], e)
		}
	}

	// Exactly-once delivery at the correct ranks.
	for key, s := range sends {
		got := delivs[key]
		if s.bcast {
			byRank := make(map[machine.Rank]int)
			for _, d := range got {
				byRank[d.at]++
			}
			for r := machine.Rank(0); int(r) < o.topo.WorldSize(); r++ {
				switch n := byRank[r]; {
				case r == s.key.origin && n != 0:
					fail("broadcast %s delivered %d times at its own origin", key, n)
				case r != s.key.origin && n == 0:
					fail("broadcast %s from rank %d never delivered at rank %d", key, s.key.origin, r)
				case r != s.key.origin && n > 1:
					fail("broadcast %s delivered %d times at rank %d", key, n, r)
				}
			}
			continue
		}
		switch {
		case len(got) == 0:
			fail("message %s from rank %d to rank %d was never delivered", key, s.key.origin, s.dst)
		case len(got) > 1:
			fail("message %s delivered %d times (exactly-once violated)", key, len(got))
		case got[0].at != s.dst:
			fail("message %s addressed to rank %d delivered at rank %d", key, s.dst, got[0].at)
		}
	}
	// Spurious deliveries: nothing may arrive that was never sent.
	for key, got := range delivs {
		if _, ok := sends[key]; !ok {
			fail("delivery of unknown message %s at rank %d", key, got[0].at)
		}
	}

	// Hop-sequence conformance for unicast routes, and channel
	// constraints for every record transmission.
	o.validateRoutes(sends, edges, fail)

	// Packet conservation: the transport trace must balance, or the run
	// ended with traffic still in flight.
	if s, r := o.pktSent.Load(), o.pktRecv.Load(); s != r {
		fail("packet conservation violated: %d packets sent, %d received", s, r)
	}
	// Post-run phase totals (subsumes the per-barrier checks, but
	// catches runs whose final barrier was itself premature).
	for p := range o.expected {
		if exp, got := o.expected[p].Load(), o.delivered[p].Load(); exp != got {
			fail("phase %d ended with %d of %d deliveries", p, got, exp)
		}
	}

	if len(errs) == 0 {
		return nil
	}
	sort.Strings(errs)
	return fmt.Errorf("oracle: %d violation(s):\n  %s", len(errs), strings.Join(errs, "\n  "))
}

// validateRoutes checks each unicast message's reconstructed hop chain
// against machine.Path and every remote record movement against the
// scheme's channel set.
func (o *oracle) validateRoutes(sends map[msgKey]sendRec, edges map[msgKey][]hopEdge, fail func(string, ...any)) {
	for key, es := range edges {
		for _, e := range es {
			if e.at == e.hop {
				fail("message %s self-hop at rank %d", key, e.at)
			}
			if !o.topo.SameNode(e.at, e.hop) && !o.remote[e.at][e.hop] {
				fail("remote channel violation: %v", o.topo.CheckRemoteEdge(o.scheme, e.at, e.hop))
			}
		}
	}
	for key, s := range sends {
		if s.bcast || s.dst == s.key.origin {
			// Broadcast fan-out trees and synchronous self-deliveries
			// have no single canonical chain; their hop edges are still
			// channel-checked above.
			continue
		}
		next := make(map[machine.Rank]machine.Rank, len(edges[key]))
		for _, e := range edges[key] {
			if prev, dup := next[e.at]; dup {
				fail("message %s forwarded twice from rank %d (to %d and %d)", key, e.at, prev, e.hop)
			}
			next[e.at] = e.hop
		}
		var hops []machine.Rank
		cur := s.key.origin
		for len(hops) <= len(next) {
			h, ok := next[cur]
			if !ok {
				break
			}
			hops = append(hops, h)
			cur = h
		}
		if len(hops) != len(next) {
			fail("message %s hop edges do not form a chain from rank %d: %v", key, s.key.origin, edges[key])
			continue
		}
		if err := o.topo.CheckHops(o.scheme, s.key.origin, s.dst, hops); err != nil {
			fail("path conformance: message %s: %v", key, err)
		}
	}
}
