package simtest

import (
	"fmt"
	"math/rand"
	"time"

	"ygm/internal/machine"
	"ygm/internal/synch"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// watchdogInterval is the host-time deadlock polling cadence for fuzz
// runs. Much shorter than the production default: a mutant that wedges
// the world should fail the case in tens of milliseconds, not seconds.
const watchdogInterval = 25 * time.Millisecond

// testEmptySpinCap bounds the nonblocking TestEmpty barrier loop; a
// correct run converges in far fewer iterations, so hitting the cap is
// itself a termination-detection failure.
const testEmptySpinCap = 1 << 22

// Outcome is the full multi-oracle verdict of one fuzz run. The three
// error fields are independent dimensions: Runtime reports rank panics,
// deadlock-watchdog dumps, or invalid cases (nothing else was checked);
// Delivery is the exactly-once/path-conformance oracle verdict; Synch is
// the synchronizability oracle verdict (the run's event log was not
// reorder-equivalent to synchronous rounds, or its certificate failed
// independent validation).
type Outcome struct {
	Runtime  error
	Delivery error
	Synch    error
	// Cert is the validated synchronous round schedule when Synch is nil
	// and SynchChecked is true.
	Cert *synch.Certificate
	// SynchChecked reports whether the synchronizability oracle ran at
	// all (it is skipped when the run died at the Runtime level).
	SynchChecked bool
}

// Err flattens the outcome into the single error RunCase reports:
// runtime failures first (the other oracles saw a truncated run), then
// delivery, then synchronizability.
func (o Outcome) Err() error {
	switch {
	case o.Runtime != nil:
		return o.Runtime
	case o.Delivery != nil:
		return o.Delivery
	default:
		return o.Synch
	}
}

// RunCase executes one fuzz workload and checks it against every
// oracle. A nil return means the run completed and every
// delivery-semantics and synchronizability property held; the error
// otherwise describes the first violation (see Outcome.Err).
func RunCase(c Case) error { return RunCaseOutcome(c, nil).Err() }

// RunCaseTraced is RunCase with an extra tracer riding alongside the
// oracles — the observability layer's packet and span events mirror
// into tr while the oracles still see (and judge) every packet. Used by
// the CI trace smoke job to prove trace export works on real fuzz
// traffic.
func RunCaseTraced(c Case, tr transport.Tracer) error {
	return RunCaseOutcome(c, tr).Err()
}

// RunCaseOutcome executes one fuzz workload and returns the per-oracle
// verdicts separately, so callers (the mutation smoke test, the
// synchronizability sweep) can tell which oracle saw what.
func RunCaseOutcome(c Case, tr transport.Tracer) Outcome {
	out, _ := runCaseLogged(c, tr)
	return out
}

// runCaseLogged is RunCaseOutcome plus the frozen synchronizability
// event log (nil when the run died at the Runtime level), for the
// cross-validation replay's script comparison.
func runCaseLogged(c Case, tr transport.Tracer) (Outcome, *synch.Log) {
	if err := c.validate(); err != nil {
		return Outcome{Runtime: err}, nil
	}
	topo := c.Topo()
	o := newOracle(topo, c.Scheme, c.Phases)
	rec := synch.NewRecorder(topo.WorldSize())
	hooks := c.Mutant.hooks()
	cfg := transport.NewConfig(topo,
		transport.WithSeed(c.Seed),
		transport.WithTrace(transport.NewMultiTracer(o, rec, tr)),
		transport.WithWatchdogInterval(watchdogInterval),
		transport.WithWorkers(c.Workers),
	)
	if c.Jitter {
		cfg.Delay = jitterDelay(c.Seed, topo.WorldSize())
	}
	_, err := transport.Run(cfg, func(p *transport.Proc) error {
		return runRank(p, c, o, rec, hooks)
	})
	if err != nil {
		return Outcome{Runtime: err}, nil
	}
	out := Outcome{Delivery: o.validate(), SynchChecked: true}
	log := rec.Log()
	v := synch.Check(log)
	switch {
	case !v.OK:
		out.Synch = fmt.Errorf("synchronizability: %v", v.Violation)
	default:
		if err := synch.ValidateCertificate(log, v.Cert); err != nil {
			out.Synch = fmt.Errorf("synchronizability: certificate failed independent validation: %v", err)
		} else {
			out.Cert = v.Cert
		}
	}
	return out, log
}

// jitterDelay builds a seeded per-source delay injector: every packet
// gains up to 50µs of extra virtual flight time, perturbing which
// packets are physically present at each poll or drain. Each source
// rank draws from its own generator (DelayFn runs on the sender's
// goroutine), so the injection is deterministic per rank.
func jitterDelay(seed int64, world int) transport.DelayFn {
	rngs := make([]*rand.Rand, world)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed*7919 + int64(i)*104729 + 0x51ed))
	}
	return func(src, dst machine.Rank, tag transport.Tag, size int) float64 {
		return rngs[src].Float64() * 50e-6
	}
}

// runRank is the SPMD body of one rank: Phases rounds of seeded sends
// followed by a quiescence barrier, with the delivery oracle and the
// synchronizability recorder logging every logical event on this rank's
// goroutine.
func runRank(p *transport.Proc, c Case, o *oracle, rec *synch.Recorder, hooks *ygm.TestHooks) error {
	me := p.Rank()
	world := p.WorldSize()
	rng := rand.New(rand.NewSource(c.Seed*1000003 + int64(me)*8191 + 17))

	handler := func(s ygm.Sender, payload []byte) {
		m, ok := o.recordDelivery(me, payload)
		if ok {
			rec.Recv(me, m.key.key64())
		}
		if !ok || m.bcast || m.ttl <= 0 {
			return
		}
		// Data-dependent spawn (the graph-traversal pattern): the child
		// inherits the parent's phase so barrier accounting stays sound.
		// Key, destination, and filler derive from the parent key alone —
		// never from a shared rng — so every variant and every delivery
		// interleaving of one case issues the identical command script.
		key := spawnKey(me, m.key)
		h := spawnHash(key)
		dst := machine.Rank(h % uint64(world))
		fill := int((h >> 32) % uint64(c.MaxPayload+1))
		o.recordSendKeyed(key, false, dst, m.phase)
		rec.Spawn(me, key.key64(), dst, m.key.key64())
		s.Send(dst, encodePayload(key, false, m.phase, m.ttl-1, dst, fill))
	}

	opts := []ygm.Option{
		ygm.WithScheme(c.Scheme),
		ygm.WithCapacity(c.Capacity),
		ygm.WithTap(o),
		ygm.WithHooks(hooks),
	}
	switch c.Variant {
	case VariantLazy:
		opts = append(opts, ygm.WithExchange(ygm.LazyExchange))
	case VariantRound:
		opts = append(opts, ygm.WithExchange(ygm.RoundExchange))
	case VariantSync:
		opts = append(opts, ygm.WithExchange(ygm.SyncExchange))
	default:
		return fmt.Errorf("simtest: unknown variant %v", c.Variant)
	}
	mb := ygm.New(p, handler, opts...)
	send, bcast := mb.Send, mb.Broadcast

	// WaitEmpty is the quiescence barrier on every variant (the sync
	// mailbox aliases it to ExchangeUntilQuiet); lazy cases optionally
	// drive it through nonblocking TestEmpty polling instead.
	barrier := func() error { mb.WaitEmpty(); return nil }
	if c.Variant == VariantLazy && c.TestEmptyBarrier {
		barrier = func() error {
			for spins := 0; ; spins++ {
				done, err := mb.TestEmpty()
				if err != nil {
					return fmt.Errorf("simtest: rank %d: %v", me, err)
				}
				if done {
					return nil
				}
				if spins > testEmptySpinCap {
					return fmt.Errorf("simtest: rank %d: TestEmpty never converged", me)
				}
				// A real poller does external work between calls; yield so
				// peers sharing the OS thread progress, and unwind instead
				// of livelocking if one already died.
				p.AbortIfPeerFailed()
				p.Yield()
			}
		}
	}

	for phase := 0; phase < c.Phases; phase++ {
		for i := 0; i < c.Msgs; i++ {
			if c.BcastEvery > 0 && rng.Intn(c.BcastEvery) == 0 {
				key := o.recordSend(me, true, machine.Nil, phase)
				rec.Broadcast(me, key.key64())
				bcast(encodePayload(key, true, phase, 0, machine.Nil, rng.Intn(c.MaxPayload+1)))
				continue
			}
			dst := machine.Rank(rng.Intn(world))
			key := o.recordSend(me, false, dst, phase)
			rec.Send(me, key.key64(), dst)
			send(dst, encodePayload(key, false, phase, c.TTL, dst, rng.Intn(c.MaxPayload+1)))
		}
		if err := barrier(); err != nil {
			return err
		}
		rec.Barrier(me, uint64(phase))
		o.checkBarrier(me, phase)
	}
	return nil
}
