package simtest

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// watchdogInterval is the host-time deadlock polling cadence for fuzz
// runs. Much shorter than the production default: a mutant that wedges
// the world should fail the case in tens of milliseconds, not seconds.
const watchdogInterval = 25 * time.Millisecond

// testEmptySpinCap bounds the nonblocking TestEmpty barrier loop; a
// correct run converges in far fewer iterations, so hitting the cap is
// itself a termination-detection failure.
const testEmptySpinCap = 1 << 22

// RunCase executes one fuzz workload and checks it against the oracle.
// A nil return means the run completed and every delivery-semantics
// property held; the error otherwise describes the violation (oracle
// verdict, rank panic, or deadlock-watchdog dump).
func RunCase(c Case) error { return RunCaseTraced(c, nil) }

// RunCaseTraced is RunCase with an extra tracer riding alongside the
// oracle — the observability layer's packet and span events mirror into
// tr while the oracle still sees (and judges) every packet. Used by the
// CI trace smoke job to prove trace export works on real fuzz traffic.
func RunCaseTraced(c Case, tr transport.Tracer) error {
	if err := c.validate(); err != nil {
		return err
	}
	topo := c.Topo()
	o := newOracle(topo, c.Scheme, c.Phases)
	hooks := c.Mutant.hooks()
	var trace transport.Tracer = o
	if tr != nil {
		trace = &teeTracer{a: o, b: tr}
	}
	cfg := transport.Config{
		Topo:             topo,
		Seed:             c.Seed,
		Trace:            trace,
		WatchdogInterval: watchdogInterval,
	}
	if c.Jitter {
		cfg.Delay = jitterDelay(c.Seed, topo.WorldSize())
	}
	_, err := transport.Run(cfg, func(p *transport.Proc) error {
		return runRank(p, c, o, hooks)
	})
	if err != nil {
		return err
	}
	return o.validate()
}

// teeTracer fans every Tracer callback out to two sinks and forwards
// SpanObserver callbacks to whichever sinks implement the extension.
// It always satisfies transport.SpanObserver so the runtime enables
// span emission whenever either side wants it.
type teeTracer struct{ a, b transport.Tracer }

func (t *teeTracer) PacketSent(src, dst machine.Rank, tag transport.Tag, size int, sent, arrive float64) {
	t.a.PacketSent(src, dst, tag, size, sent, arrive)
	t.b.PacketSent(src, dst, tag, size, sent, arrive)
}

func (t *teeTracer) PacketReceived(src, dst machine.Rank, tag transport.Tag, size int, now float64) {
	t.a.PacketReceived(src, dst, tag, size, now)
	t.b.PacketReceived(src, dst, tag, size, now)
}

func (t *teeTracer) SpanBegin(rank machine.Rank, name string, at float64) {
	if so, ok := t.a.(transport.SpanObserver); ok {
		so.SpanBegin(rank, name, at)
	}
	if so, ok := t.b.(transport.SpanObserver); ok {
		so.SpanBegin(rank, name, at)
	}
}

func (t *teeTracer) SpanEnd(rank machine.Rank, name string, at float64) {
	if so, ok := t.a.(transport.SpanObserver); ok {
		so.SpanEnd(rank, name, at)
	}
	if so, ok := t.b.(transport.SpanObserver); ok {
		so.SpanEnd(rank, name, at)
	}
}

func (t *teeTracer) Mark(rank machine.Rank, name string, value uint64, at float64) {
	if so, ok := t.a.(transport.SpanObserver); ok {
		so.Mark(rank, name, value, at)
	}
	if so, ok := t.b.(transport.SpanObserver); ok {
		so.Mark(rank, name, value, at)
	}
}

// jitterDelay builds a seeded per-source delay injector: every packet
// gains up to 50µs of extra virtual flight time, perturbing which
// packets are physically present at each poll or drain. Each source
// rank draws from its own generator (DelayFn runs on the sender's
// goroutine), so the injection is deterministic per rank.
func jitterDelay(seed int64, world int) transport.DelayFn {
	rngs := make([]*rand.Rand, world)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed*7919 + int64(i)*104729 + 0x51ed))
	}
	return func(src, dst machine.Rank, tag transport.Tag, size int) float64 {
		return rngs[src].Float64() * 50e-6
	}
}

// runRank is the SPMD body of one rank: Phases rounds of seeded sends
// followed by a quiescence barrier, with the oracle recording every
// logical event on this rank's goroutine.
func runRank(p *transport.Proc, c Case, o *oracle, hooks *ygm.TestHooks) error {
	me := p.Rank()
	world := p.WorldSize()
	rng := rand.New(rand.NewSource(c.Seed*1000003 + int64(me)*8191 + 17))

	handler := func(s ygm.Sender, payload []byte) {
		m, ok := o.recordDelivery(me, payload)
		if !ok || m.bcast || m.ttl <= 0 {
			return
		}
		// Data-dependent spawn (the graph-traversal pattern): the child
		// inherits the parent's phase so barrier accounting stays sound.
		dst := machine.Rank(rng.Intn(world))
		key := o.recordSend(me, false, dst, m.phase)
		s.Send(dst, encodePayload(key, false, m.phase, m.ttl-1, dst, rng.Intn(c.MaxPayload+1)))
	}

	opts := []ygm.Option{
		ygm.WithScheme(c.Scheme),
		ygm.WithCapacity(c.Capacity),
		ygm.WithTap(o),
		ygm.WithHooks(hooks),
	}
	switch c.Variant {
	case VariantLazy:
		opts = append(opts, ygm.WithExchange(ygm.LazyExchange))
	case VariantRound:
		opts = append(opts, ygm.WithExchange(ygm.RoundExchange))
	case VariantSync:
		opts = append(opts, ygm.WithExchange(ygm.SyncExchange))
	default:
		return fmt.Errorf("simtest: unknown variant %v", c.Variant)
	}
	mb := ygm.New(p, handler, opts...)
	send, bcast := mb.Send, mb.Broadcast

	// WaitEmpty is the quiescence barrier on every variant (the sync
	// mailbox aliases it to ExchangeUntilQuiet); lazy cases optionally
	// drive it through nonblocking TestEmpty polling instead.
	barrier := func() error { mb.WaitEmpty(); return nil }
	if c.Variant == VariantLazy && c.TestEmptyBarrier {
		barrier = func() error {
			for spins := 0; ; spins++ {
				done, err := mb.TestEmpty()
				if err != nil {
					return fmt.Errorf("simtest: rank %d: %v", me, err)
				}
				if done {
					return nil
				}
				if spins > testEmptySpinCap {
					return fmt.Errorf("simtest: rank %d: TestEmpty never converged", me)
				}
				// A real poller does external work between calls; yield so
				// peers sharing the OS thread progress, and unwind instead
				// of livelocking if one already died.
				p.AbortIfPeerFailed()
				runtime.Gosched()
			}
		}
	}

	for phase := 0; phase < c.Phases; phase++ {
		for i := 0; i < c.Msgs; i++ {
			if c.BcastEvery > 0 && rng.Intn(c.BcastEvery) == 0 {
				key := o.recordSend(me, true, machine.Nil, phase)
				bcast(encodePayload(key, true, phase, 0, machine.Nil, rng.Intn(c.MaxPayload+1)))
				continue
			}
			dst := machine.Rank(rng.Intn(world))
			key := o.recordSend(me, false, dst, phase)
			send(dst, encodePayload(key, false, phase, c.TTL, dst, rng.Intn(c.MaxPayload+1)))
		}
		if err := barrier(); err != nil {
			return err
		}
		o.checkBarrier(me, phase)
	}
	return nil
}
