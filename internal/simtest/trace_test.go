package simtest

import (
	"bytes"
	"testing"

	"ygm/internal/transport"
)

// TestTraceSmoke runs fuzz workloads with a ChromeTracer teed alongside
// the oracle and requires the exported timeline to pass the shared
// trace_event validator. This is the test the CI trace smoke job runs:
// it proves trace export holds up on real, schedule-perturbed traffic
// (not just the curated unit-test worlds) while the delivery oracle
// still checks every packet.
func TestTraceSmoke(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		c := FromSeed(seed)
		tr := transport.NewChromeTracer()
		if err := RunCaseTraced(c, tr); err != nil {
			t.Fatalf("case %s failed under tracing:\n%v", c, err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if err := transport.ValidateChromeTrace(buf.Bytes()); err != nil {
			t.Fatalf("case %s emitted an invalid trace: %v", c, err)
		}
	}
}

// TestTraceDoesNotPerturbOracle: the same case must pass the oracle with
// and without the tee in place — tracing is observation, not behavior.
func TestTraceDoesNotPerturbOracle(t *testing.T) {
	c := FromSeed(42)
	if err := RunCase(c); err != nil {
		t.Fatalf("untraced baseline failed: %v", err)
	}
	if err := RunCaseTraced(c, transport.NewChromeTracer()); err != nil {
		t.Fatalf("traced run failed where untraced passed: %v", err)
	}
}
