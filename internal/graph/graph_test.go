package graph

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRMATParamsValidate(t *testing.T) {
	if err := Graph500.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Uniform4.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Webgraph.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := RMATParams{A: 0.5, B: 0.5, C: 0.5, D: 0.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-normalized parameters accepted")
	}
	neg := RMATParams{A: -0.1, B: 0.5, C: 0.3, D: 0.3}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative parameter accepted")
	}
}

func TestRMATDeterminism(t *testing.T) {
	a := Collect(NewRMAT(Graph500, 10, 7), 100)
	b := Collect(NewRMAT(Graph500, 10, 7), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := Collect(NewRMAT(Graph500, 10, 8), 100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRMATRange(t *testing.T) {
	g := NewRMAT(Graph500, 8, 1)
	n := g.NumVertices()
	if n != 256 {
		t.Fatalf("NumVertices = %d", n)
	}
	for _, e := range Collect(g, 2000) {
		if e.U >= n || e.V >= n {
			t.Fatalf("edge %v outside [0,%d)", e, n)
		}
	}
}

// TestRMATSkew: Graph500 parameters concentrate edges on low vertex ids;
// the max degree must far exceed the mean, while Uniform4 stays flat.
func TestRMATSkew(t *testing.T) {
	const scale, edges = 12, 1 << 15
	maxDeg := func(p RMATParams) (max float64, mean float64) {
		g := NewRMAT(p, scale, 5)
		deg := Degrees(Collect(g, edges), g.NumVertices())
		var m uint64
		for _, d := range deg {
			if d > m {
				m = d
			}
		}
		return float64(m), float64(2*edges) / float64(g.NumVertices())
	}
	skMax, skMean := maxDeg(Graph500)
	if skMax < 20*skMean {
		t.Fatalf("Graph500 max degree %g not skewed vs mean %g", skMax, skMean)
	}
	unMax, unMean := maxDeg(Uniform4)
	if unMax > 20*unMean {
		t.Fatalf("Uniform4 max degree %g unexpectedly skewed vs mean %g", unMax, unMean)
	}
}

func TestRMATPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { NewRMAT(RMATParams{A: 2}, 4, 1) },
		func() { NewRMAT(Graph500, 0, 1) },
		func() { NewRMAT(Graph500, 63, 1) },
		func() { NewUniform(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestUniformRangeAndBalance(t *testing.T) {
	g := NewUniform(64, 3)
	deg := Degrees(Collect(g, 64*100), 64)
	// Each vertex expects 200 endpoint hits; allow generous slack.
	for v, d := range deg {
		if d < 100 || d > 320 {
			t.Fatalf("vertex %d degree %d far from expectation 200", v, d)
		}
	}
}

func TestOwnerPartitioning(t *testing.T) {
	const p = 7
	counts := make([]uint64, p)
	for v := uint64(0); v < 1000; v++ {
		o := Owner(v, p)
		if o != int(v%p) {
			t.Fatalf("Owner(%d) = %d", v, o)
		}
		if got := GlobalID(LocalID(v, p), p, o); got != v {
			t.Fatalf("local/global round trip: %d -> %d", v, got)
		}
		counts[o]++
	}
	var total uint64
	for r := 0; r < p; r++ {
		if got := LocalCount(1000, p, r); got != counts[r] {
			t.Fatalf("LocalCount(rank %d) = %d, want %d", r, got, counts[r])
		}
		total += counts[r]
	}
	if total != 1000 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestLocalIDProperty(t *testing.T) {
	f := func(v uint64, praw uint8) bool {
		p := int(praw%32) + 1
		o := Owner(v, p)
		return o >= 0 && o < p && GlobalID(LocalID(v, p), p, o) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedMaxDegreeScaling(t *testing.T) {
	// Doubling vertices (scale+1) with doubled edges multiplies the
	// expected max degree by 2*(A+B).
	e1 := ExpectedMaxDegree(Graph500, 10, 1<<14)
	e2 := ExpectedMaxDegree(Graph500, 11, 1<<15)
	want := 2 * (Graph500.A + Graph500.B)
	if got := e2 / e1; math.Abs(got-want) > 1e-9 {
		t.Fatalf("scaling ratio = %g, want %g", got, want)
	}
}

func TestDelegateThresholdFloor(t *testing.T) {
	if got := DelegateThreshold(Graph500, 30, 4, 0.001); got != 2 {
		t.Fatalf("threshold floor = %d, want 2", got)
	}
	big := DelegateThreshold(Graph500, 8, 1<<20, 0.5)
	if big <= 2 {
		t.Fatalf("large workload threshold = %d", big)
	}
}

func TestDegreesOracle(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 2}, {3, 0}}
	deg := Degrees(edges, 5)
	want := []uint64{2, 2, 3, 1, 0}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("deg = %v, want %v", deg, want)
		}
	}
}

func TestConnectedComponentsSeq(t *testing.T) {
	// Components: {0,1,2,5}, {3,4}, {6}.
	edges := []Edge{{1, 2}, {0, 1}, {5, 2}, {3, 4}}
	got := ConnectedComponentsSeq(edges, 7)
	want := []uint64{0, 0, 0, 3, 3, 0, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cc = %v, want %v", got, want)
		}
	}
}

// TestConnectedComponentsSeqProperty: labels are idempotent (label of the
// label is the label) and consistent across edges.
func TestConnectedComponentsSeqProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 64
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{uint64(raw[i] % n), uint64(raw[i+1] % n)})
		}
		labels := ConnectedComponentsSeq(edges, n)
		for v, l := range labels {
			if labels[l] != l || l > uint64(v) {
				return false
			}
		}
		for _, e := range edges {
			if labels[e.U] != labels[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestWebgraphHeavierTail: the webgraph preset should be at least as
// skewed as Graph500 at equal scale.
func TestWebgraphHeavierTail(t *testing.T) {
	const scale, edges = 12, 1 << 15
	top := func(p RMATParams) uint64 {
		g := NewRMAT(p, scale, 9)
		deg := Degrees(Collect(g, edges), g.NumVertices())
		sort.Slice(deg, func(i, j int) bool { return deg[i] > deg[j] })
		return deg[0]
	}
	if top(Webgraph) < top(Graph500) {
		t.Fatalf("webgraph top degree %d below Graph500's %d", top(Webgraph), top(Graph500))
	}
}
