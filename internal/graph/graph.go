// Package graph provides the synthetic graph workloads of the paper's
// evaluation: an RMAT generator (Graph500 parameterization for the
// connected-components and SpMV experiments), uniform Erdős–Rényi-style
// edges (degree counting, Fig. 6), a skewed "webgraph-like" preset
// standing in for the WDC 2012 crawl (Fig. 8d), plus vertex-partitioning
// and delegate-threshold helpers.
//
// All generators are deterministic given a seed, so SPMD ranks can each
// generate their share of a globally well-defined edge stream without
// communication.
package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Edge is one directed edge of a graph with integer vertex ids.
type Edge struct {
	U, V uint64
}

// Generator produces a deterministic stream of edges.
type Generator interface {
	// Next returns the next edge in the stream.
	Next() Edge
}

// RMATParams are the quadrant probabilities of the recursive matrix
// generator of Chakrabarti, Zhan and Faloutsos. They must be
// non-negative and sum to 1.
type RMATParams struct {
	A, B, C, D float64
}

// Graph500 is the parameterization used by the Graph500 benchmark and by
// the paper's connected-components and Fig. 8a SpMV experiments.
var Graph500 = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// Uniform4 sets all quadrants to 0.25, yielding uniformly sampled edges
// (an Erdős–Rényi-like graph); the paper uses it for Fig. 8c.
var Uniform4 = RMATParams{A: 0.25, B: 0.25, C: 0.25, D: 0.25}

// Webgraph is a skewed preset standing in for the WDC 2012 hyperlink
// graph of Fig. 8d: heavier-tailed than Graph500, as web crawls are.
var Webgraph = RMATParams{A: 0.63, B: 0.17, C: 0.15, D: 0.05}

// Validate reports whether the parameters form a probability vector.
func (p RMATParams) Validate() error {
	for _, v := range []float64{p.A, p.B, p.C, p.D} {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("graph: negative RMAT parameter in %+v", p)
		}
	}
	if s := p.A + p.B + p.C + p.D; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("graph: RMAT parameters sum to %g, want 1", s)
	}
	return nil
}

// RMAT generates edges over 2^Scale vertices by recursive quadrant
// descent. Distinct seeds give independent streams, letting each rank
// draw its share of a partitioned workload.
type RMAT struct {
	params RMATParams
	scale  int
	rng    *rand.Rand
}

// NewRMAT returns an RMAT generator. Scale must be in [1, 62].
func NewRMAT(params RMATParams, scale int, seed int64) *RMAT {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if scale < 1 || scale > 62 {
		panic(fmt.Sprintf("graph: RMAT scale %d out of range", scale))
	}
	return &RMAT{params: params, scale: scale, rng: rand.New(rand.NewSource(seed))}
}

// NumVertices returns 2^scale.
func (g *RMAT) NumVertices() uint64 { return 1 << uint(g.scale) }

// Next draws one edge.
func (g *RMAT) Next() Edge {
	var u, v uint64
	ab := g.params.A + g.params.B
	abc := ab + g.params.C
	for i := 0; i < g.scale; i++ {
		u <<= 1
		v <<= 1
		r := g.rng.Float64()
		switch {
		case r < g.params.A:
			// top-left: no bits set
		case r < ab:
			v |= 1
		case r < abc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return Edge{U: u, V: v}
}

// UniformGen samples edge endpoints independently and uniformly from
// [0, NumVertices) — the degree-counting workload of Fig. 6.
type UniformGen struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform returns a uniform edge generator over n vertices.
func NewUniform(n uint64, seed int64) *UniformGen {
	if n == 0 {
		panic("graph: uniform generator over zero vertices")
	}
	return &UniformGen{n: n, rng: rand.New(rand.NewSource(seed))}
}

// NumVertices returns the vertex-set size.
func (g *UniformGen) NumVertices() uint64 { return g.n }

// Next draws one edge.
func (g *UniformGen) Next() Edge {
	return Edge{
		U: uint64(g.rng.Int63n(int64(g.n))),
		V: uint64(g.rng.Int63n(int64(g.n))),
	}
}

// Collect draws n edges from g into a slice.
func Collect(g Generator, n int) []Edge {
	out := make([]Edge, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Owner returns the rank that owns vertex v under the paper's
// round-robin 1D partitioning (Algorithm 1, line 9).
func Owner(v uint64, worldSize int) int {
	return int(v % uint64(worldSize))
}

// LocalID returns the dense local index of vertex v on its owner rank
// (Algorithm 1, line 5).
func LocalID(v uint64, worldSize int) uint64 {
	return v / uint64(worldSize)
}

// LocalCount returns how many of n round-robin-partitioned vertices rank
// r owns.
func LocalCount(n uint64, worldSize, r int) uint64 {
	base := n / uint64(worldSize)
	if uint64(r) < n%uint64(worldSize) {
		return base + 1
	}
	return base
}

// GlobalID inverts LocalID for rank r.
func GlobalID(local uint64, worldSize, r int) uint64 {
	return local*uint64(worldSize) + uint64(r)
}

// ExpectedMaxDegree estimates the expected largest (out-)degree of an
// RMAT graph with the given parameters, scale and edge count: the
// hottest row is hit with probability (A+B)^scale per edge. The paper
// scales its delegate threshold with this quantity to keep the delegate
// count from exploding under weak scaling (Section VI-B).
func ExpectedMaxDegree(p RMATParams, scale int, edges uint64) float64 {
	return float64(edges) * math.Pow(p.A+p.B, float64(scale))
}

// DelegateThreshold returns the degree above which a vertex is delegated,
// as a fraction of the expected maximum degree, but never below 2 (a
// threshold of 0 or 1 would delegate everything).
func DelegateThreshold(p RMATParams, scale int, edges uint64, frac float64) uint64 {
	t := frac * ExpectedMaxDegree(p, scale, edges)
	if t < 2 {
		return 2
	}
	return uint64(t)
}

// Degrees computes the (undirected: both endpoints count) degree of
// every vertex in edges, for test oracles and sequential baselines.
func Degrees(edges []Edge, numVertices uint64) []uint64 {
	deg := make([]uint64, numVertices)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// ConnectedComponentsSeq finds, for every vertex, the minimum vertex id
// reachable from it (treating edges as undirected) — the sequential
// oracle for the distributed label-propagation experiment. Isolated
// vertices are their own component.
func ConnectedComponentsSeq(edges []Edge, numVertices uint64) []uint64 {
	parent := make([]uint64, numVertices)
	for i := range parent {
		parent[i] = uint64(i)
	}
	var find func(x uint64) uint64
	find = func(x uint64) uint64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b uint64) {
		ra, rb := find(a), find(b)
		if ra < rb {
			parent[rb] = ra
		} else if rb < ra {
			parent[ra] = rb
		}
	}
	for _, e := range edges {
		union(e.U, e.V)
	}
	out := make([]uint64, numVertices)
	for i := range out {
		out[i] = find(uint64(i))
	}
	return out
}
