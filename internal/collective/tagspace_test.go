package collective

import (
	"fmt"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
)

// White-box pins on the communicator tag layout. The fields the
// transport layer interprets are load-bearing: TagCollective (bit 32)
// must be set on every tag so collective traffic is classified
// correctly, and bit 63 must stay clear because TagRound = 1<<63 and
// stats.isDataTag treats any tag >= TagRound as round-exchange data.

// TestTagOpFieldFullWidth pins the regression the split op-field layout
// fixes: the old fold shifted the 32-bit sequence across bits 8..39,
// overlapping the TagCollective marker at bit 32, so op=X and
// op=X+2^24 aliased to the same tag. Every byte boundary of the op
// width must now produce a distinct tag.
func TestTagOpFieldFullWidth(t *testing.T) {
	c := &Comm{hash: 0xdeadbeefcafe}
	ops := []uint64{0, 1, 1 << 8, 1 << 16, 1 << 24, 1<<24 + 1, 1 << 31, 0xffffffff}
	seen := map[transport.Tag]uint64{}
	for _, op := range ops {
		tag := c.tag(op, 0)
		if prev, dup := seen[tag]; dup {
			t.Fatalf("op %#x and op %#x alias to tag %#x", prev, op, tag)
		}
		seen[tag] = op
	}
	if a, b := c.tag(1, 0), c.tag(1+(1<<24), 0); a == b {
		t.Fatalf("2^24 aliasing regression: tag(1,0) == tag(1+2^24,0) == %#x", a)
	}
}

// TestTagMarkerBits pins the transport-facing invariants across the
// whole reachable tag space: bit 32 set, bit 63 clear, and rounds of
// the same op distinct.
func TestTagMarkerBits(t *testing.T) {
	c := &Comm{hash: ^uint64(0)} // worst case: every hash bit set
	for _, op := range []uint64{0, 1, 0xffffff, 1 << 24, 0xffffffff} {
		for _, round := range []int{0, 1, 0xff} {
			tag := c.tag(op, round)
			if tag&transport.TagCollective == 0 {
				t.Fatalf("tag(%#x,%d) = %#x lost the TagCollective marker", op, round, tag)
			}
			if tag >= transport.TagRound {
				t.Fatalf("tag(%#x,%d) = %#x strays into the TagRound space", op, round, tag)
			}
		}
		if c.tag(op, 0) == c.tag(op, 1) {
			t.Fatalf("rounds 0 and 1 of op %#x alias", op)
		}
	}
	for _, stream := range []uint64{0, 1, 1 << 24, 0xffffffff} {
		tag := c.ReplyTag(stream)
		if tag&transport.TagCollective == 0 {
			t.Fatalf("ReplyTag(%#x) = %#x lost the TagCollective marker", stream, tag)
		}
		if tag >= transport.TagRound {
			t.Fatalf("ReplyTag(%#x) = %#x strays into the TagRound space", stream, tag)
		}
	}
}

// TestReplyTagDisjointFromOpTags pins the reply discriminator: no
// ReplyTag of any communicator may equal a collective-op tag of any
// communicator — even one with an identical member-list hash — because
// bit 41 partitions the two streams structurally.
func TestReplyTagDisjointFromOpTags(t *testing.T) {
	a := &Comm{hash: 0x123456789abc}
	b := &Comm{hash: 0x123456789abc} // identical hash: the adversarial case
	for _, stream := range []uint64{0, 1, 1 << 24, 0xffffffff} {
		reply := a.ReplyTag(stream)
		if reply&tagReplyBit == 0 {
			t.Fatalf("ReplyTag(%#x) = %#x lacks the reply discriminator bit", stream, reply)
		}
		for _, op := range []uint64{0, 1, stream, stream + 1, 0xffffffff} {
			for _, round := range []int{0, 1, 0xff} {
				if opTag := b.tag(op, round); opTag == reply {
					t.Fatalf("ReplyTag(%#x) collides with tag(%#x,%d) = %#x",
						stream, op, round, opTag)
				}
			}
		}
	}
	if a.ReplyTag(1) == a.ReplyTag(2) {
		t.Fatal("distinct reply streams alias")
	}
}

// TestIdenticalMembershipCommsDisjoint is the PR 2 CommNonce bug class
// extended to the reply stream: two communicators built over the same
// member list must disagree on every op tag and every reply tag,
// because the construction nonce feeds the hash field.
func TestIdenticalMembershipCommsDisjoint(t *testing.T) {
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  3,
	}, func(p *transport.Proc) error {
		c1 := World(p)
		c2 := World(p)
		if c1.hash == c2.hash {
			return fmt.Errorf("identical-membership communicators share hash %#x", c1.hash)
		}
		for _, op := range []uint64{1, 2, 1 << 24} {
			if c1.tag(op, 0) == c2.tag(op, 0) {
				return fmt.Errorf("identical-membership communicators share op tag for op %d", op)
			}
		}
		if c1.ReplyTag(0) == c2.ReplyTag(0) {
			return fmt.Errorf("identical-membership communicators share reply tag")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
