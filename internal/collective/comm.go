// Package collective implements synchronous MPI-style collective
// operations on top of the transport layer: barrier, broadcast, reduce,
// allreduce, gather, scatter, all-to-all and friends. YGM's termination
// detection runs on these, and the CombBLAS-style baseline uses them for
// its bulk-synchronous phases — exhibiting exactly the slowest-rank
// coupling the paper's asynchronous mailbox avoids.
//
// Every operation is collective over a Comm: all member ranks must call
// the same operations in the same order. Tags are derived from a hash of
// the member list plus a per-communicator sequence number and the round
// index, so concurrent communicators and back-to-back operations do not
// cross-talk.
package collective

import (
	"fmt"
	"hash/fnv"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// Comm is a communicator: an ordered rank group with a private tag space.
// Construct one per rank with New (or World); all members must pass the
// member list in the same order.
type Comm struct {
	p     *transport.Proc
	ranks []machine.Rank
	me    int // index of p.Rank() in ranks
	hash  uint64
	seq   uint64
}

// New builds a communicator over ranks for the calling rank p. The list
// must contain p's rank exactly once; duplicates or absent callers are
// programming errors and return an error.
func New(p *transport.Proc, ranks []machine.Rank) (*Comm, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("collective: empty communicator")
	}
	me := -1
	seen := make(map[machine.Rank]bool, len(ranks))
	for i, r := range ranks {
		if !p.Topo().Valid(r) {
			return nil, fmt.Errorf("collective: invalid rank %d in communicator", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("collective: duplicate rank %d in communicator", r)
		}
		seen[r] = true
		if r == p.Rank() {
			me = i
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("collective: rank %d not a member of communicator", p.Rank())
	}
	h := fnv.New64a()
	var buf [8]byte
	// Fold in the per-rank construction nonce: two communicators over the
	// same member list (e.g. NLNR's first and third exchange stages, or a
	// stage communicator that coincides with the world) would otherwise
	// share a tag space while advancing independent sequence counters —
	// their traffic would cross-talk. Construction is collective, so all
	// members draw the same nonce.
	nonce := p.CommNonce()
	for i := range buf {
		buf[i] = byte(nonce >> (8 * i))
	}
	h.Write(buf[:])
	for _, r := range ranks {
		buf[0] = byte(r)
		buf[1] = byte(r >> 8)
		buf[2] = byte(r >> 16)
		buf[3] = byte(r >> 24)
		h.Write(buf[:4])
	}
	members := make([]machine.Rank, len(ranks))
	copy(members, ranks)
	return &Comm{p: p, ranks: members, me: me, hash: h.Sum64()}, nil
}

// World returns the communicator spanning every rank, in rank order.
func World(p *transport.Proc) *Comm {
	ranks := make([]machine.Rank, p.WorldSize())
	for i := range ranks {
		ranks[i] = machine.Rank(i)
	}
	c, err := New(p, ranks)
	if err != nil {
		panic(err) // cannot happen: world always contains the caller
	}
	return c
}

// Size returns the number of member ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Index returns the calling rank's position within the communicator.
func (c *Comm) Index() int { return c.me }

// Ranks returns the member list (callers must not mutate it).
func (c *Comm) Ranks() []machine.Rank { return c.ranks }

// nextOp advances the per-communicator sequence number and returns it.
// All members advance in lockstep because operations are collective.
func (c *Comm) nextOp() uint64 {
	c.seq++
	return c.seq
}

// tag derives the transport tag for round `round` of operation `op`.
// Layout: the collective bit, 22 bits of member-list hash, 32 bits of
// operation sequence, 8 bits of round.
func (c *Comm) tag(op uint64, round int) transport.Tag {
	return transport.TagCollective |
		transport.Tag((c.hash&0x3fffff)<<41) |
		transport.Tag((op&0xffffffff)<<8) |
		transport.Tag(round&0xff)
}

// send transmits payload to the member at index idx.
func (c *Comm) send(idx int, t transport.Tag, payload []byte) {
	c.p.Send(c.ranks[idx], t, payload)
}

// recv blocks for one packet of tag t and returns it.
func (c *Comm) recv(t transport.Tag) *transport.Packet {
	return c.p.Recv(t)
}

// indexOf maps a member rank back to its communicator index.
func (c *Comm) indexOf(r machine.Rank) int {
	for i, m := range c.ranks {
		if m == r {
			return i
		}
	}
	return -1
}
