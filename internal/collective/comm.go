// Package collective implements synchronous MPI-style collective
// operations on top of the transport layer: barrier, broadcast, reduce,
// allreduce, gather, scatter, all-to-all and friends. YGM's termination
// detection runs on these, and the CombBLAS-style baseline uses them for
// its bulk-synchronous phases — exhibiting exactly the slowest-rank
// coupling the paper's asynchronous mailbox avoids.
//
// Every operation is collective over a Comm: all member ranks must call
// the same operations in the same order. Tags are derived from a hash of
// the member list plus a per-communicator sequence number and the round
// index, so concurrent communicators and back-to-back operations do not
// cross-talk.
package collective

import (
	"fmt"
	"hash/fnv"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// Comm is a communicator: an ordered rank group with a private tag space.
// Construct one per rank with New (or World); all members must pass the
// member list in the same order.
type Comm struct {
	p     *transport.Proc
	ranks []machine.Rank
	me    int // index of p.Rank() in ranks
	hash  uint64
	seq   uint64
}

// New builds a communicator over ranks for the calling rank p. The list
// must contain p's rank exactly once; duplicates or absent callers are
// programming errors and return an error.
func New(p *transport.Proc, ranks []machine.Rank) (*Comm, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("collective: empty communicator")
	}
	me := -1
	seen := make(map[machine.Rank]bool, len(ranks))
	for i, r := range ranks {
		if !p.Topo().Valid(r) {
			return nil, fmt.Errorf("collective: invalid rank %d in communicator", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("collective: duplicate rank %d in communicator", r)
		}
		seen[r] = true
		if r == p.Rank() {
			me = i
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("collective: rank %d not a member of communicator", p.Rank())
	}
	h := fnv.New64a()
	var buf [8]byte
	// Fold in the per-rank construction nonce: two communicators over the
	// same member list (e.g. NLNR's first and third exchange stages, or a
	// stage communicator that coincides with the world) would otherwise
	// share a tag space while advancing independent sequence counters —
	// their traffic would cross-talk. Construction is collective, so all
	// members draw the same nonce.
	nonce := p.CommNonce()
	for i := range buf {
		buf[i] = byte(nonce >> (8 * i))
	}
	h.Write(buf[:])
	for _, r := range ranks {
		buf[0] = byte(r)
		buf[1] = byte(r >> 8)
		buf[2] = byte(r >> 16)
		buf[3] = byte(r >> 24)
		h.Write(buf[:4])
	}
	members := make([]machine.Rank, len(ranks))
	copy(members, ranks)
	return &Comm{p: p, ranks: members, me: me, hash: h.Sum64()}, nil
}

// World returns the communicator spanning every rank, in rank order.
func World(p *transport.Proc) *Comm {
	ranks := make([]machine.Rank, p.WorldSize())
	for i := range ranks {
		ranks[i] = machine.Rank(i)
	}
	c, err := New(p, ranks)
	if err != nil {
		panic(err) // cannot happen: world always contains the caller
	}
	return c
}

// Size returns the number of member ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Index returns the calling rank's position within the communicator.
func (c *Comm) Index() int { return c.me }

// Ranks returns the member list (callers must not mutate it).
func (c *Comm) Ranks() []machine.Rank { return c.ranks }

// nextOp advances the per-communicator sequence number and returns it.
// All members advance in lockstep because operations are collective.
func (c *Comm) nextOp() uint64 {
	c.seq++
	return c.seq
}

// Collective tag layout. Every field must be disjoint from the others
// and from the two marker bits the transport layer interprets:
// TagCollective (bit 32) must be set on every tag in this space, and
// bit 63 must stay clear — TagRound = 1<<63 and stats.isDataTag
// classifies any tag >= TagRound as round-exchange data traffic.
//
//	bits  0..7   round index within one operation
//	bits  8..31  operation sequence, low 24 bits
//	bit   32     TagCollective marker
//	bits 33..40  operation sequence, high 8 bits
//	bit   41     reply-stream discriminator (0 = collective op, 1 = ReplyTag)
//	bits 42..62  member-list hash (21 bits)
//	bit   63     clear (TagRound space)
//
// The sequence number is split around the marker bit so its full 32-bit
// width survives: the previous layout shifted op by 8 across bits
// 8..39, which overlapped bit 32 — op=X and op=X+2^24 produced
// identical tags, silently aliasing long-lived communicators after 2^24
// operations.
const (
	tagHashBits  = 21
	tagHashShift = 42
	tagReplyBit  = transport.Tag(1) << 41
	tagOpHiShift = 33
)

// foldOp spreads a 32-bit sequence number into the two op fields on
// either side of the TagCollective marker bit.
func foldOp(op uint64) transport.Tag {
	return transport.Tag((op&0xffffff)<<8) |
		transport.Tag(((op>>24)&0xff)<<tagOpHiShift)
}

// tag derives the transport tag for round `round` of operation `op`.
func (c *Comm) tag(op uint64, round int) transport.Tag {
	return transport.TagCollective |
		transport.Tag((c.hash&((1<<tagHashBits)-1))<<tagHashShift) |
		foldOp(op) |
		transport.Tag(round&0xff)
}

// ReplyTag carves a point-to-point tag out of this communicator's tag
// space for request/reply traffic that is *not* a collective operation
// (e.g. the container layer's AsyncVisitFetch responses). The reply
// discriminator bit keeps every ReplyTag structurally disjoint from
// every collective-op tag of every communicator, including ones with an
// identical member list: op tags have bit 41 clear, reply tags have it
// set, and the CommNonce folded into the hash separates same-membership
// communicators from each other. stream distinguishes independent reply
// channels on the same communicator (full 32-bit width, split like the
// op sequence).
func (c *Comm) ReplyTag(stream uint64) transport.Tag {
	return transport.TagCollective | tagReplyBit |
		transport.Tag((c.hash&((1<<tagHashBits)-1))<<tagHashShift) |
		foldOp(stream)
}

// send transmits payload to the member at index idx.
func (c *Comm) send(idx int, t transport.Tag, payload []byte) {
	c.p.Send(c.ranks[idx], t, payload)
}

// recv blocks for one packet of tag t and returns it.
func (c *Comm) recv(t transport.Tag) *transport.Packet {
	return c.p.Recv(t)
}

// indexOf maps a member rank back to its communicator index.
func (c *Comm) indexOf(r machine.Rank) int {
	for i, m := range c.ranks {
		if m == r {
			return i
		}
	}
	return -1
}
