package collective

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/transport"
)

// Reduction operators for unsigned and floating-point vectors.
var (
	SumU64 = func(a, b uint64) uint64 { return a + b }
	MaxU64 = func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	}
	MinU64 = func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}
	SumF64 = func(a, b float64) float64 { return a + b }
	MaxF64 = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
)

// Barrier blocks until every member has entered it, using the
// dissemination algorithm (ceil(log2 P) rounds, each rank sending one
// message per round). This is the synchronization cost synchronous
// collectives impose: a rank leaves only after transitively hearing from
// everyone, so the exit time is governed by the slowest entrant.
func (c *Comm) Barrier() {
	sp := c.p.Span("coll.barrier")
	defer sp.End()
	op := c.nextOp()
	size := len(c.ranks)
	round := 0
	for k := 1; k < size; k <<= 1 {
		t := c.tag(op, round)
		c.send((c.me+k)%size, t, nil)
		c.recv(t)
		round++
	}
}

// Bcast distributes root's payload to every member along a binomial tree
// and returns it (the root gets its own payload back). Non-root callers
// pass nil.
func (c *Comm) Bcast(root int, payload []byte) []byte {
	op := c.nextOp()
	size := len(c.ranks)
	c.checkRoot(root)
	rel := (c.me - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			pkt := c.recv(c.tag(op, 0))
			payload = pkt.Payload
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			dst := (rel + mask + root) % size
			c.send(dst, c.tag(op, 0), payload)
		}
		mask >>= 1
	}
	return payload
}

// ReduceU64 combines each member's vals elementwise with op along a
// binomial tree rooted at root. The root returns the reduction; other
// members return nil. All members must pass equal-length vectors.
func (c *Comm) ReduceU64(root int, vals []uint64, op func(a, b uint64) uint64) []uint64 {
	opSeq := c.nextOp()
	size := len(c.ranks)
	c.checkRoot(root)
	acc := make([]uint64, len(vals))
	copy(acc, vals)
	rel := (c.me - root + size) % size
	round := 0
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			if rel|mask < size {
				pkt := c.recv(c.tag(opSeq, round))
				got, err := codec.NewReader(pkt.Payload).Uvarints()
				if err != nil || len(got) != len(acc) {
					panic(fmt.Sprintf("collective: reduce payload mismatch: %v", err))
				}
				for i := range acc {
					acc[i] = op(acc[i], got[i])
				}
			}
		} else {
			parent := (rel&^mask + root) % size
			w := codec.NewWriter(10 * len(acc))
			w.Uvarints(acc)
			c.send(parent, c.tag(opSeq, round), w.Bytes())
			return nil
		}
		round++
	}
	return acc
}

// AllreduceU64 reduces to member 0 and broadcasts the result back.
func (c *Comm) AllreduceU64(vals []uint64, op func(a, b uint64) uint64) []uint64 {
	acc := c.ReduceU64(0, vals, op)
	var payload []byte
	if c.me == 0 {
		w := codec.NewWriter(10 * len(acc))
		w.Uvarints(acc)
		payload = w.Bytes()
	}
	out, err := codec.NewReader(c.Bcast(0, payload)).Uvarints()
	if err != nil {
		panic(fmt.Sprintf("collective: allreduce decode: %v", err))
	}
	return out
}

// ReduceF64 is ReduceU64 for float vectors.
func (c *Comm) ReduceF64(root int, vals []float64, op func(a, b float64) float64) []float64 {
	opSeq := c.nextOp()
	size := len(c.ranks)
	c.checkRoot(root)
	acc := make([]float64, len(vals))
	copy(acc, vals)
	rel := (c.me - root + size) % size
	round := 0
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			if rel|mask < size {
				pkt := c.recv(c.tag(opSeq, round))
				got, err := codec.NewReader(pkt.Payload).Float64s()
				if err != nil || len(got) != len(acc) {
					panic(fmt.Sprintf("collective: reduce payload mismatch: %v", err))
				}
				for i := range acc {
					acc[i] = op(acc[i], got[i])
				}
			}
		} else {
			parent := (rel&^mask + root) % size
			w := codec.NewWriter(8*len(acc) + 2)
			w.Float64s(acc)
			c.send(parent, c.tag(opSeq, round), w.Bytes())
			return nil
		}
		round++
	}
	return acc
}

// ReduceBytes combines opaque payloads along a binomial tree rooted at
// root with a caller-supplied merge. The root returns the reduction;
// other members return nil. merge receives the accumulator and one
// child's contribution and returns the new accumulator; the contribution
// aliases a received packet, so merge must copy anything it keeps.
// Payload ownership passes to the collective (it may be sent onward).
// The container layer's top-K heavy-hitters query rides on this.
func (c *Comm) ReduceBytes(root int, payload []byte, merge func(acc, in []byte) []byte) []byte {
	opSeq := c.nextOp()
	size := len(c.ranks)
	c.checkRoot(root)
	acc := payload
	rel := (c.me - root + size) % size
	round := 0
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			if rel|mask < size {
				pkt := c.recv(c.tag(opSeq, round))
				acc = merge(acc, pkt.Payload)
			}
		} else {
			parent := (rel&^mask + root) % size
			c.send(parent, c.tag(opSeq, round), acc)
			return nil
		}
		round++
	}
	return acc
}

// AllreduceF64 reduces float vectors to member 0 and broadcasts back.
func (c *Comm) AllreduceF64(vals []float64, op func(a, b float64) float64) []float64 {
	acc := c.ReduceF64(0, vals, op)
	var payload []byte
	if c.me == 0 {
		w := codec.NewWriter(8*len(acc) + 2)
		w.Float64s(acc)
		payload = w.Bytes()
	}
	out, err := codec.NewReader(c.Bcast(0, payload)).Float64s()
	if err != nil {
		panic(fmt.Sprintf("collective: allreduce decode: %v", err))
	}
	return out
}

// Gatherv collects every member's payload at root along a binomial tree.
// The root returns a slice indexed by member position; others return nil.
func (c *Comm) Gatherv(root int, payload []byte) [][]byte {
	opSeq := c.nextOp()
	size := len(c.ranks)
	c.checkRoot(root)
	// held maps member index -> payload for the subtree gathered so far.
	held := map[int][]byte{c.me: payload}
	rel := (c.me - root + size) % size
	round := 0
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			if rel|mask < size {
				pkt := c.recv(c.tag(opSeq, round))
				r := codec.NewReader(pkt.Payload)
				n, err := r.Uvarint()
				if err != nil {
					panic(fmt.Sprintf("collective: gather decode: %v", err))
				}
				for i := uint64(0); i < n; i++ {
					idx, err1 := r.Uvarint()
					body, err2 := r.Bytes0()
					if err1 != nil || err2 != nil {
						panic("collective: gather decode")
					}
					held[int(idx)] = body
				}
			}
		} else {
			parent := (rel&^mask + root) % size
			w := &codec.Writer{}
			w.Uvarint(uint64(len(held)))
			for idx, body := range held {
				w.Uvarint(uint64(idx))
				w.Bytes0(body)
			}
			c.send(parent, c.tag(opSeq, round), w.Bytes())
			return nil
		}
		round++
	}
	out := make([][]byte, size)
	for idx, body := range held {
		out[idx] = body
	}
	return out
}

// Allgatherv gathers every payload to member 0 and broadcasts the set.
func (c *Comm) Allgatherv(payload []byte) [][]byte {
	gathered := c.Gatherv(0, payload)
	var blob []byte
	if c.me == 0 {
		w := &codec.Writer{}
		w.Uvarint(uint64(len(gathered)))
		for _, b := range gathered {
			w.Bytes0(b)
		}
		blob = w.Bytes()
	}
	blob = c.Bcast(0, blob)
	r := codec.NewReader(blob)
	n, err := r.Uvarint()
	if err != nil {
		panic(fmt.Sprintf("collective: allgather decode: %v", err))
	}
	out := make([][]byte, n)
	for i := range out {
		if out[i], err = r.Bytes0(); err != nil {
			panic(fmt.Sprintf("collective: allgather decode: %v", err))
		}
	}
	return out
}

// Scatterv sends payloads[i] from root to member i (flat fan-out) and
// returns the caller's piece. Non-root callers pass nil.
func (c *Comm) Scatterv(root int, payloads [][]byte) []byte {
	opSeq := c.nextOp()
	c.checkRoot(root)
	if c.me == root {
		if len(payloads) != len(c.ranks) {
			panic(fmt.Sprintf("collective: scatter of %d payloads over %d members", len(payloads), len(c.ranks)))
		}
		for i := range c.ranks {
			if i == root {
				continue
			}
			c.send(i, c.tag(opSeq, 0), payloads[i])
		}
		return payloads[root]
	}
	return c.recv(c.tag(opSeq, 0)).Payload
}

// Alltoallv performs the synchronous all-to-all exchange MPI_ALLTOALLV
// provides: member i's payloads[j] is delivered to member j. Every member
// must participate; the return slice is indexed by source member. A rank
// cannot leave until it has received from every peer, which couples its
// exit time to the slowest sender — the behaviour Section III contrasts
// with the asynchronous mailbox.
func (c *Comm) Alltoallv(payloads [][]byte) [][]byte {
	sp := c.p.Span("coll.alltoallv")
	defer sp.End()
	opSeq := c.nextOp()
	size := len(c.ranks)
	if len(payloads) != size {
		panic(fmt.Sprintf("collective: alltoallv of %d payloads over %d members", len(payloads), size))
	}
	t := c.tag(opSeq, 0)
	out := make([][]byte, size)
	out[c.me] = payloads[c.me]
	for shift := 1; shift < size; shift++ {
		c.send((c.me+shift)%size, t, payloads[(c.me+shift)%size])
	}
	for i := 1; i < size; i++ {
		pkt := c.recv(t)
		idx := c.indexOf(pkt.Src)
		if idx < 0 {
			panic("collective: alltoallv packet from non-member")
		}
		out[idx] = pkt.Payload
	}
	return out
}

// BlobSink consumes one member's contribution to AlltoallvPooled.
// Implementations must fully process blob before returning: the buffer
// is recycled to the transport pool immediately afterwards.
type BlobSink interface {
	VisitBlob(srcIndex int, blob []byte)
}

// AlltoallvPooled is Alltoallv for pooled payload buffers: member i's
// payloads[j] — acquired from Proc.AcquireBuf — is delivered to member
// j's sink, and each received packet (payload included) is recycled to
// the world pool once its sink call returns, so a steady-state exchange
// allocates nothing. Blobs are visited in member order, matching the
// iteration order of Alltoallv's return slice; empty contributions are
// skipped. The caller's own payloads[me] is visited directly without a
// transport round trip and is NOT recycled — the caller still owns it.
// scratch must hold at least Size() entries and is used as the packet
// reorder table between receives and visits.
func (c *Comm) AlltoallvPooled(payloads [][]byte, scratch []*transport.Packet, sink BlobSink) {
	sp := c.p.Span("coll.alltoallv")
	defer sp.End()
	opSeq := c.nextOp()
	size := len(c.ranks)
	if len(payloads) != size {
		panic(fmt.Sprintf("collective: alltoallv of %d payloads over %d members", len(payloads), size))
	}
	if len(scratch) < size {
		panic(fmt.Sprintf("collective: alltoallv scratch of %d under %d members", len(scratch), size))
	}
	t := c.tag(opSeq, 0)
	for shift := 1; shift < size; shift++ {
		i := (c.me + shift) % size
		c.p.SendPooled(c.ranks[i], t, payloads[i])
	}
	for i := 1; i < size; i++ {
		pkt := c.recv(t)
		idx := c.indexOf(pkt.Src)
		if idx < 0 {
			panic("collective: alltoallv packet from non-member")
		}
		scratch[idx] = pkt
	}
	for idx := 0; idx < size; idx++ {
		if idx == c.me {
			if len(payloads[idx]) > 0 {
				sink.VisitBlob(idx, payloads[idx])
			}
			continue
		}
		pkt := scratch[idx]
		scratch[idx] = nil
		if len(pkt.Payload) > 0 {
			sink.VisitBlob(idx, pkt.Payload)
		}
		c.p.Recycle(pkt)
	}
}

// ExscanU64 returns the exclusive prefix reduction of val over member
// order: member i receives op(val_0, ..., val_{i-1}), and member 0
// receives identity (which the caller supplies).
func (c *Comm) ExscanU64(val, identity uint64, op func(a, b uint64) uint64) uint64 {
	w := &codec.Writer{}
	w.Uvarint(val)
	gathered := c.Gatherv(0, w.Bytes())
	var payloads [][]byte
	if c.me == 0 {
		payloads = make([][]byte, len(c.ranks))
		acc := identity
		for i, blob := range gathered {
			pw := &codec.Writer{}
			pw.Uvarint(acc)
			payloads[i] = pw.Bytes()
			v, err := codec.NewReader(blob).Uvarint()
			if err != nil {
				panic(fmt.Sprintf("collective: exscan decode: %v", err))
			}
			acc = op(acc, v)
		}
	}
	piece := c.Scatterv(0, payloads)
	out, err := codec.NewReader(piece).Uvarint()
	if err != nil {
		panic(fmt.Sprintf("collective: exscan decode: %v", err))
	}
	return out
}

func (c *Comm) checkRoot(root int) {
	if root < 0 || root >= len(c.ranks) {
		panic(fmt.Sprintf("collective: root %d outside communicator of size %d", root, len(c.ranks)))
	}
}
