package collective

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
)

// runWorld executes body on every rank of a nodes x cores cluster.
func runWorld(t *testing.T, nodes, cores int, body func(p *transport.Proc, c *Comm) error) *transport.Report {
	t.Helper()
	rep, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  1,
	}, func(p *transport.Proc) error {
		return body(p, World(p))
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestNewValidation(t *testing.T) {
	_, err := transport.Run(transport.Config{Topo: machine.New(1, 2)}, func(p *transport.Proc) error {
		if _, err := New(p, nil); err == nil {
			return fmt.Errorf("empty communicator accepted")
		}
		if _, err := New(p, []machine.Rank{0, 0, 1}); err == nil {
			return fmt.Errorf("duplicate member accepted")
		}
		if _, err := New(p, []machine.Rank{99}); err == nil {
			return fmt.Errorf("invalid rank accepted")
		}
		other := machine.Rank(1 - int(p.Rank()))
		if _, err := New(p, []machine.Rank{other}); err == nil {
			return fmt.Errorf("communicator excluding caller accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierCouplesToSlowest(t *testing.T) {
	const slowTime = 5e-3
	var mu sync.Mutex
	exits := map[machine.Rank]float64{}
	runWorld(t, 3, 2, func(p *transport.Proc, c *Comm) error {
		if p.Rank() == 4 {
			p.Compute(slowTime)
		}
		c.Barrier()
		mu.Lock()
		exits[p.Rank()] = p.Now()
		mu.Unlock()
		return nil
	})
	for r, at := range exits {
		if at < slowTime {
			t.Fatalf("rank %d left the barrier at %g, before the straggler's %g", r, at, slowTime)
		}
	}
}

func TestBarrierRepeats(t *testing.T) {
	runWorld(t, 2, 2, func(p *transport.Proc, c *Comm) error {
		for i := 0; i < 5; i++ {
			c.Barrier()
		}
		return nil
	})
}

func TestBcastAllSizes(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 5} {
		cores := cores
		t.Run(fmt.Sprintf("ranks=%d", 2*cores), func(t *testing.T) {
			want := []byte("broadcast payload")
			runWorld(t, 2, cores, func(p *transport.Proc, c *Comm) error {
				for root := 0; root < c.Size(); root++ {
					var in []byte
					if c.Index() == root {
						in = want
					}
					got := c.Bcast(root, in)
					if !bytes.Equal(got, want) {
						return fmt.Errorf("rank %d root %d: got %q", p.Rank(), root, got)
					}
				}
				return nil
			})
		})
	}
}

func TestReduceSum(t *testing.T) {
	runWorld(t, 2, 3, func(p *transport.Proc, c *Comm) error {
		vals := []uint64{uint64(c.Index()), 1, uint64(c.Index() * c.Index())}
		got := c.ReduceU64(2, vals, SumU64)
		if c.Index() != 2 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		// sum of 0..5, count, sum of squares 0..25
		want := []uint64{15, 6, 55}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("reduce = %v, want %v", got, want)
			}
		}
		return nil
	})
}

func TestAllreduceSumMaxMin(t *testing.T) {
	runWorld(t, 3, 2, func(p *transport.Proc, c *Comm) error {
		me := uint64(c.Index())
		if got := c.AllreduceU64([]uint64{me}, SumU64)[0]; got != 15 {
			return fmt.Errorf("sum = %d", got)
		}
		if got := c.AllreduceU64([]uint64{me}, MaxU64)[0]; got != 5 {
			return fmt.Errorf("max = %d", got)
		}
		if got := c.AllreduceU64([]uint64{me + 3}, MinU64)[0]; got != 3 {
			return fmt.Errorf("min = %d", got)
		}
		return nil
	})
}

func TestAllreduceF64(t *testing.T) {
	runWorld(t, 2, 2, func(p *transport.Proc, c *Comm) error {
		v := float64(c.Index()) + 0.5
		got := c.AllreduceF64([]float64{v, -v}, SumF64)
		if got[0] != 8 || got[1] != -8 {
			return fmt.Errorf("allreduce f64 = %v", got)
		}
		if mx := c.AllreduceF64([]float64{v}, MaxF64)[0]; mx != 3.5 {
			return fmt.Errorf("max f64 = %v", mx)
		}
		return nil
	})
}

func TestGathervAndAllgatherv(t *testing.T) {
	runWorld(t, 2, 3, func(p *transport.Proc, c *Comm) error {
		mine := []byte(fmt.Sprintf("rank-%d", c.Index()))
		got := c.Gatherv(1, mine)
		if c.Index() == 1 {
			if len(got) != c.Size() {
				return fmt.Errorf("gather len = %d", len(got))
			}
			for i, b := range got {
				if string(b) != fmt.Sprintf("rank-%d", i) {
					return fmt.Errorf("gather[%d] = %q", i, b)
				}
			}
		} else if got != nil {
			return fmt.Errorf("non-root gather = %v", got)
		}
		all := c.Allgatherv(mine)
		for i, b := range all {
			if string(b) != fmt.Sprintf("rank-%d", i) {
				return fmt.Errorf("allgather[%d] = %q", i, b)
			}
		}
		return nil
	})
}

func TestScatterv(t *testing.T) {
	runWorld(t, 2, 2, func(p *transport.Proc, c *Comm) error {
		var in [][]byte
		if c.Index() == 0 {
			in = make([][]byte, c.Size())
			for i := range in {
				in[i] = []byte{byte(i * 10)}
			}
		}
		got := c.Scatterv(0, in)
		if len(got) != 1 || got[0] != byte(c.Index()*10) {
			return fmt.Errorf("scatter piece = %v", got)
		}
		return nil
	})
}

func TestAlltoallv(t *testing.T) {
	runWorld(t, 2, 3, func(p *transport.Proc, c *Comm) error {
		out := make([][]byte, c.Size())
		for j := range out {
			out[j] = []byte(fmt.Sprintf("%d->%d", c.Index(), j))
		}
		in := c.Alltoallv(out)
		for i, b := range in {
			if want := fmt.Sprintf("%d->%d", i, c.Index()); string(b) != want {
				return fmt.Errorf("alltoallv[%d] = %q, want %q", i, b, want)
			}
		}
		return nil
	})
}

func TestExscan(t *testing.T) {
	runWorld(t, 2, 3, func(p *transport.Proc, c *Comm) error {
		got := c.ExscanU64(uint64(c.Index()+1), 0, SumU64)
		// exclusive prefix sum of 1,2,3,4,5,6
		want := uint64(c.Index() * (c.Index() + 1) / 2)
		if got != want {
			return fmt.Errorf("exscan = %d, want %d", got, want)
		}
		return nil
	})
}

// TestSubCommunicators runs disjoint communicators concurrently — one per
// node — exercising tag isolation between groups.
func TestSubCommunicators(t *testing.T) {
	runWorld(t, 3, 4, func(p *transport.Proc, world *Comm) error {
		local, err := New(p, p.Topo().LocalRanks(p.Rank()))
		if err != nil {
			return err
		}
		sum := local.AllreduceU64([]uint64{uint64(p.Rank())}, SumU64)[0]
		base := uint64(p.Node() * 4)
		if want := base + (base + 1) + (base + 2) + (base + 3); sum != want {
			return fmt.Errorf("node %d local sum = %d, want %d", p.Node(), sum, want)
		}
		// And the world still works afterwards.
		total := world.AllreduceU64([]uint64{1}, SumU64)[0]
		if total != 12 {
			return fmt.Errorf("world count = %d", total)
		}
		return nil
	})
}

// TestOverlappingCommunicators: row/column style groups (as the 2D SpMV
// baseline uses) must not cross-talk.
func TestOverlappingCommunicators(t *testing.T) {
	// 4 ranks as a 2x2 grid: rows {0,1},{2,3}; cols {0,2},{1,3}.
	runWorld(t, 2, 2, func(p *transport.Proc, world *Comm) error {
		me := int(p.Rank())
		row := []machine.Rank{machine.Rank(me / 2 * 2), machine.Rank(me/2*2 + 1)}
		col := []machine.Rank{machine.Rank(me % 2), machine.Rank(me%2 + 2)}
		rc, err := New(p, row)
		if err != nil {
			return err
		}
		cc, err := New(p, col)
		if err != nil {
			return err
		}
		rs := rc.AllreduceU64([]uint64{uint64(me)}, SumU64)[0]
		cs := cc.AllreduceU64([]uint64{uint64(me)}, SumU64)[0]
		wantRow := uint64(me/2*4 + 1) // 0+1 or 2+3
		wantCol := uint64(me%2*2 + 2) // 0+2 or 1+3
		if rs != wantRow || cs != wantCol {
			return fmt.Errorf("rank %d: row %d (want %d) col %d (want %d)", me, rs, wantRow, cs, wantCol)
		}
		return nil
	})
}

// TestSyncCollectiveIdleTime quantifies the paper's core claim setup: with
// an imbalanced workload, a bulk-synchronous exchange leaves fast ranks
// idle. Utilization must drop well below 1.
func TestSyncCollectiveIdleTime(t *testing.T) {
	cfg := transport.Config{
		Topo:  machine.New(2, 2),
		Model: netsim.Quartz(),
		ComputeScale: func(r machine.Rank) float64 {
			if r == 0 {
				return 20 // rank 0 is a straggler
			}
			return 1
		},
	}
	rep, err := transport.Run(cfg, func(p *transport.Proc) error {
		c := World(p)
		for iter := 0; iter < 4; iter++ {
			p.Compute(1e-3)
			payloads := make([][]byte, c.Size())
			for j := range payloads {
				payloads[j] = make([]byte, 256)
			}
			c.Alltoallv(payloads)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if u := rep.Utilization(); u > 0.5 {
		t.Fatalf("synchronous exchange with a 20x straggler should idle the others; utilization = %g", u)
	}
}

func TestBcastLargeAndEmpty(t *testing.T) {
	runWorld(t, 2, 2, func(p *transport.Proc, c *Comm) error {
		big := c.Bcast(0, func() []byte {
			if c.Index() == 0 {
				b := make([]byte, 1<<20)
				b[12345] = 7
				return b
			}
			return nil
		}())
		if len(big) != 1<<20 || big[12345] != 7 {
			return fmt.Errorf("big bcast corrupted")
		}
		if got := c.Bcast(1, nil); len(got) != 0 {
			return fmt.Errorf("empty bcast = %v", got)
		}
		return nil
	})
}
