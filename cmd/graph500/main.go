// Command graph500 runs the two Graph500 kernels the paper's
// introduction highlights (LLNL's Sierra submission used YGM for its
// BFS; SSSP is the benchmark's second kernel): an RMAT graph is built
// through the mailbox, then BFS and SSSP run from several roots, each
// validated against a sequential oracle, with harmonic-mean
// traversed-edges-per-second (TEPS) reported.
//
// By default the cluster is simulated (virtual time on the netsim cost
// model). With -wire=local the same ranks run in real time in one
// process, and with -wire=tcp the program runs as nodes*cores real OS
// processes exchanging real bytes over localhost:
//
//	graph500 -scale 12 -ef 8 -nodes 8 -cores 8 -roots 4 -scheme NLNR
//	graph500 -scale 10 -nodes 2 -cores 2 -wire=tcp -spawn
//	graph500 -nodes 2 -cores 2 -wire=tcp -rank-id 3 -rendezvous 127.0.0.1:9123
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"

	"ygm/internal/apps"
	"ygm/internal/collective"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/wirecli"
	"ygm/internal/ygm"
)

func main() {
	fs := flag.NewFlagSet("graph500", flag.ExitOnError)
	scale := fs.Int("scale", 11, "graph has 2^scale vertices")
	ef := fs.Int("ef", 8, "edge factor (edges = ef * vertices)")
	nodes := fs.Int("nodes", 8, "compute nodes")
	cores := fs.Int("cores", 8, "cores per node")
	roots := fs.Int("roots", 4, "number of search roots")
	schemeName := fs.String("scheme", "NLNR", "routing scheme")
	mailbox := fs.Int("mailbox", 1024, "mailbox capacity (records)")
	seed := fs.Int64("seed", 12, "workload seed")
	var wires wirecli.Flags
	wires.Register(fs)
	fs.Parse(os.Args[1:])

	scheme, err := machine.ParseScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	world := *nodes * *cores
	if err := wires.Validate(world); err != nil {
		log.Fatal(err)
	}
	if done, err := wires.Launch(world, os.Args[1:]); done {
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	n := uint64(1) << uint(*scale)
	totalEdges := int(n) * *ef
	edgesPerRank := totalEdges / world
	if edgesPerRank == 0 {
		log.Fatalf("graph500: %d edges cannot be split over %d ranks", totalEdges, world)
	}

	// Under -wire=tcp every process executes this same loop; only rank 0
	// prints (the kernels allreduce their results, so all processes hold
	// identical numbers).
	timeBase := "simulated"
	if wires.Wire != "sim" {
		timeBase = "wall"
	}
	if wires.IsRoot() {
		fmt.Printf("graph500-style kernels on YGM (%s routing, %s wire)\n", scheme, wires.Wire)
		fmt.Printf("graph: scale %d (%d vertices), edge factor %d (%d edges), %d ranks\n",
			*scale, n, *ef, edgesPerRank*world, world)
		fmt.Printf("note: each kernel generates its own deterministic RMAT stream with identical parameters\n\n")
	}

	topo := machine.New(*nodes, *cores)
	var tepsBFS, tepsSSSP []float64
	for root := 0; root < *roots; root++ {
		rootVertex := uint64(root) * (n / uint64(*roots))

		bfsCfg := apps.BFSConfig{
			Mailbox:      ygm.Options{Scheme: scheme, Capacity: *mailbox},
			Scale:        *scale,
			EdgesPerRank: edgesPerRank,
			Params:       graph.Graph500,
			Seed:         *seed,
			Root:         rootVertex,
		}
		visited, levels, makespan := runBFS(&wires, topo, *seed, bfsCfg)
		teps := float64(edgesPerRank*world) / makespan
		tepsBFS = append(tepsBFS, teps)
		if wires.IsRoot() {
			fmt.Printf("BFS  root %8d: %7d reached, %2d levels, %8.1f us -> %7.1f MTEPS (%s)\n",
				rootVertex, visited, levels, makespan*1e6, teps/1e6, timeBase)
		}

		ssspCfg := apps.SSSPConfig{
			Mailbox:      ygm.Options{Scheme: scheme, Capacity: *mailbox},
			Scale:        *scale,
			EdgesPerRank: edgesPerRank,
			Params:       graph.Graph500,
			Seed:         *seed,
			Root:         rootVertex,
			MaxWeight:    255,
		}
		visited, relax, makespan := runSSSP(&wires, topo, *seed, ssspCfg)
		teps = float64(edgesPerRank*world) / makespan
		tepsSSSP = append(tepsSSSP, teps)
		if wires.IsRoot() {
			fmt.Printf("SSSP root %8d: %7d reached, %7d relaxations, %8.1f us -> %7.1f MTEPS (%s)\n",
				rootVertex, visited, relax, makespan*1e6, teps/1e6, timeBase)
		}
	}

	if wires.IsRoot() {
		fmt.Printf("\nharmonic mean: BFS %.1f MTEPS, SSSP %.1f MTEPS (%s time)\n",
			harmonicMean(tepsBFS)/1e6, harmonicMean(tepsSSSP)/1e6, timeBase)
	}
}

// newRunConfig assembles the transport config for one kernel run. A
// fresh Wire is built per run (they are single-use); under TCP the
// processes re-rendezvous for every run in the same order, so reusing
// one rendezvous address is sound.
func newRunConfig(wires *wirecli.Flags, topo machine.Topology, seed int64) transport.Config {
	w, err := wires.NewWire()
	if err != nil {
		log.Fatal(err)
	}
	return transport.NewConfig(topo,
		transport.WithSeed(seed),
		transport.WithWire(w),
	)
}

func runBFS(wires *wirecli.Flags, topo machine.Topology, seed int64, cfg apps.BFSConfig) (visited uint64, levels int, makespan float64) {
	var mu sync.Mutex
	rep, err := transport.Run(newRunConfig(wires, topo, seed), func(p *transport.Proc) error {
		res, err := apps.BFS(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		visited = res.Visited
		levels = res.Levels
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return visited, levels, rep.Makespan()
}

func runSSSP(wires *wirecli.Flags, topo machine.Topology, seed int64, cfg apps.SSSPConfig) (visited, relax uint64, makespan float64) {
	var mu sync.Mutex
	rep, err := transport.Run(newRunConfig(wires, topo, seed), func(p *transport.Proc) error {
		res, err := apps.SSSP(p, cfg)
		if err != nil {
			return err
		}
		// Relaxation counts are per-rank; reduce them here so every
		// process (and the distributed TCP run) reports the global sum.
		total := collective.World(p).AllreduceU64([]uint64{res.Relaxations}, collective.SumU64)[0]
		mu.Lock()
		visited = res.Visited
		relax = total
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return visited, relax, rep.Makespan()
}

func harmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var inv float64
	for _, x := range xs {
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}
