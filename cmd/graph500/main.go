// Command graph500 runs the two Graph500 kernels the paper's
// introduction highlights (LLNL's Sierra submission used YGM for its
// BFS; SSSP is the benchmark's second kernel) on the simulated cluster:
// an RMAT graph is built through the mailbox, then BFS and SSSP run from
// several roots, each validated against a sequential oracle, with
// harmonic-mean traversed-edges-per-second (TEPS) reported in simulated
// time.
//
// Usage:
//
//	graph500 -scale 12 -ef 8 -nodes 8 -cores 8 -roots 4 -scheme NLNR
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"

	"ygm/internal/apps"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func main() {
	scale := flag.Int("scale", 11, "graph has 2^scale vertices")
	ef := flag.Int("ef", 8, "edge factor (edges = ef * vertices)")
	nodes := flag.Int("nodes", 8, "simulated compute nodes")
	cores := flag.Int("cores", 8, "cores per node")
	roots := flag.Int("roots", 4, "number of search roots")
	schemeName := flag.String("scheme", "NLNR", "routing scheme")
	mailbox := flag.Int("mailbox", 1024, "mailbox capacity (records)")
	seed := flag.Int64("seed", 12, "workload seed")
	flag.Parse()

	scheme, err := machine.ParseScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	world := *nodes * *cores
	n := uint64(1) << uint(*scale)
	totalEdges := int(n) * *ef
	edgesPerRank := totalEdges / world
	if edgesPerRank == 0 {
		log.Fatalf("graph500: %d edges cannot be split over %d ranks", totalEdges, world)
	}

	fmt.Printf("graph500-style kernels on YGM (%s routing)\n", scheme)
	fmt.Printf("graph: scale %d (%d vertices), edge factor %d (%d edges), %d ranks\n",
		*scale, n, *ef, edgesPerRank*world, world)
	fmt.Printf("note: each kernel generates its own deterministic RMAT stream with identical parameters\n\n")

	var tepsBFS, tepsSSSP []float64
	for root := 0; root < *roots; root++ {
		rootVertex := uint64(root) * (n / uint64(*roots))

		bfsCfg := apps.BFSConfig{
			Mailbox:      ygm.Options{Scheme: scheme, Capacity: *mailbox},
			Scale:        *scale,
			EdgesPerRank: edgesPerRank,
			Params:       graph.Graph500,
			Seed:         *seed,
			Root:         rootVertex,
		}
		visited, levels, makespan := runBFS(*nodes, *cores, *seed, bfsCfg)
		teps := float64(edgesPerRank*world) / makespan
		tepsBFS = append(tepsBFS, teps)
		fmt.Printf("BFS  root %8d: %7d reached, %2d levels, %8.1f us -> %7.1f MTEPS (simulated)\n",
			rootVertex, visited, levels, makespan*1e6, teps/1e6)

		ssspCfg := apps.SSSPConfig{
			Mailbox:      ygm.Options{Scheme: scheme, Capacity: *mailbox},
			Scale:        *scale,
			EdgesPerRank: edgesPerRank,
			Params:       graph.Graph500,
			Seed:         *seed,
			Root:         rootVertex,
			MaxWeight:    255,
		}
		visited, relax, makespan := runSSSP(*nodes, *cores, *seed, ssspCfg)
		teps = float64(edgesPerRank*world) / makespan
		tepsSSSP = append(tepsSSSP, teps)
		fmt.Printf("SSSP root %8d: %7d reached, %7d relaxations, %8.1f us -> %7.1f MTEPS (simulated)\n",
			rootVertex, visited, relax, makespan*1e6, teps/1e6)
	}

	fmt.Printf("\nharmonic mean: BFS %.1f MTEPS, SSSP %.1f MTEPS (simulated time)\n",
		harmonicMean(tepsBFS)/1e6, harmonicMean(tepsSSSP)/1e6)
}

func runBFS(nodes, cores int, seed int64, cfg apps.BFSConfig) (visited uint64, levels int, makespan float64) {
	var mu sync.Mutex
	rep, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  seed,
	}, func(p *transport.Proc) error {
		res, err := apps.BFS(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		visited = res.Visited
		levels = res.Levels
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return visited, levels, rep.Makespan()
}

func runSSSP(nodes, cores int, seed int64, cfg apps.SSSPConfig) (visited, relax uint64, makespan float64) {
	var mu sync.Mutex
	rep, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  seed,
	}, func(p *transport.Proc) error {
		res, err := apps.SSSP(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		visited = res.Visited
		relax += res.Relaxations
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return visited, relax, rep.Makespan()
}

func harmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var inv float64
	for _, x := range xs {
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}
