package main

import (
	"os"
	"path/filepath"
	"testing"

	"ygm/internal/transport"
)

// TestTraceFlagProducesValidChromeTrace is the acceptance test for the
// -trace flag: a real figure run must yield a file that passes the
// shared Chrome trace_event validator (i.e. loads in Perfetto).
func TestTraceFlagProducesValidChromeTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full fig6a sweep")
	}
	out := filepath.Join(t.TempDir(), "out.json")
	if err := run([]string{"-fig", "fig6a", "-preset", "quick", "-nodes", "1,2", "-trace", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.ValidateChromeTrace(data); err != nil {
		t.Fatalf("-trace output fails validation: %v", err)
	}
	// The CLI validator (what the CI smoke job invokes) must agree.
	if err := run([]string{"-validate-trace", out}); err != nil {
		t.Fatalf("-validate-trace rejected a trace -trace just wrote: %v", err)
	}
}

// TestValidateTraceFlagRejectsGarbage: the CLI validator must fail on
// non-trace input so the CI smoke job can actually catch regressions.
func TestValidateTraceFlagRejectsGarbage(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate-trace", bad}); err == nil {
		t.Fatal("empty traceEvents accepted")
	}
	if err := run([]string{"-validate-trace", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestTraceFlagRejectsUnwritablePath: a bad trace path must surface as
// an error, not a silent no-trace run.
func TestTraceFlagRejectsUnwritablePath(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full fig6a sweep")
	}
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	if err := run([]string{"-fig", "fig6a", "-preset", "quick", "-nodes", "1", "-trace", bad}); err == nil {
		t.Fatal("run succeeded despite unwritable -trace path")
	}
}
