package main

import (
	"os"
	"path/filepath"
	"testing"

	"ygm/internal/transport"
)

// TestTraceFlagProducesValidChromeTrace is the acceptance test for the
// -trace flag: a real figure run must yield a file that passes the
// shared Chrome trace_event validator (i.e. loads in Perfetto).
func TestTraceFlagProducesValidChromeTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full fig6a sweep")
	}
	out := filepath.Join(t.TempDir(), "out.json")
	if err := run([]string{"-fig", "fig6a", "-preset", "quick", "-nodes", "1,2", "-trace", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.ValidateChromeTrace(data); err != nil {
		t.Fatalf("-trace output fails validation: %v", err)
	}
	// The CLI validator (what the CI smoke job invokes) must agree.
	if err := run([]string{"-validate-trace", out}); err != nil {
		t.Fatalf("-validate-trace rejected a trace -trace just wrote: %v", err)
	}
}

// TestValidateTraceFlagRejectsGarbage: the CLI validator must fail on
// non-trace input so the CI smoke job can actually catch regressions.
func TestValidateTraceFlagRejectsGarbage(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate-trace", bad}); err == nil {
		t.Fatal("empty traceEvents accepted")
	}
	if err := run([]string{"-validate-trace", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestParallelFlagRunsFigure: -parallel must complete a real figure
// sweep through the worker pool. (Equality of parallel and serial
// tables up to simulator tie-break jitter is asserted in
// internal/bench's TestParallelMatchesSerial, on the Table values
// directly.)
func TestParallelFlagRunsFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full fig6a sweep")
	}
	if err := run([]string{"-fig", "fig6a", "-preset", "quick", "-nodes", "1,2", "-parallel", "4", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
}

// TestProfileFlagPlumbing: -cpuprofile/-memprofile must produce
// non-empty pprof files for a run, and a bad profile path must fail the
// run instead of silently profiling nothing. Uses the topo experiment,
// which runs no simulated worlds, so the test is instant.
func TestProfileFlagPlumbing(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	if err := run([]string{"-fig", "topo", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	bad := filepath.Join(dir, "no-such-dir", "cpu.pb.gz")
	if err := run([]string{"-fig", "topo", "-cpuprofile", bad}); err == nil {
		t.Fatal("run succeeded despite unwritable -cpuprofile path")
	}
	if err := run([]string{"-fig", "topo", "-memprofile", bad}); err == nil {
		t.Fatal("run succeeded despite unwritable -memprofile path")
	}
}

// TestTraceFlagRejectsUnwritablePath: a bad trace path must surface as
// an error, not a silent no-trace run.
func TestTraceFlagRejectsUnwritablePath(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full fig6a sweep")
	}
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	if err := run([]string{"-fig", "fig6a", "-preset", "quick", "-nodes", "1", "-trace", bad}); err == nil {
		t.Fatal("run succeeded despite unwritable -trace path")
	}
}
