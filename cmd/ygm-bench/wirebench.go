package main

import (
	"encoding/binary"
	"fmt"

	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/wirecli"
)

// wirePayload is the fixed message size of the exchange benchmark —
// small enough that message rate, not bandwidth, dominates (the
// regime MPI Progress For All argues a backend must be measured in).
const wirePayload = 64

// runWireBench measures the raw TCP wire as real OS processes: every
// rank streams msgs pooled 64-byte messages to every peer, then drains
// its own incoming streams, and rank 0 reports aggregate message rate
// and bandwidth in wall time. The figure sweeps stay on the in-process
// wires (world sizes vary per cell); this is the backend-facing
// counterpart, run as `ygm-bench -wire=tcp -ranks 4 -spawn`.
func runWireBench(fl *wirecli.Flags, msgs int, seed int64, rawArgs []string) error {
	world := fl.Ranks
	if world == 0 {
		world = 4
	}
	if err := fl.Validate(world); err != nil {
		return err
	}
	if done, err := fl.Launch(world, rawArgs); done {
		return err
	}
	topo := machine.New(world, 1) // one rank per node: every byte crosses the real wire
	wire, err := fl.NewWire()
	if err != nil {
		return err
	}
	rep, err := transport.Run(transport.NewConfig(topo,
		transport.WithSeed(seed),
		transport.WithWire(wire),
	), func(p *transport.Proc) error {
		me, n := p.Rank(), p.WorldSize()
		for k := 0; k < msgs; k++ {
			for d := 0; d < n; d++ {
				if machine.Rank(d) == me {
					continue
				}
				buf := p.AcquireBuf(wirePayload)
				binary.LittleEndian.PutUint64(buf, uint64(k))
				p.SendPooled(machine.Rank(d), transport.TagUser, buf)
			}
		}
		for k := 0; k < msgs*(n-1); k++ {
			p.Recycle(p.Recv(transport.TagUser))
		}
		return nil
	})
	if err != nil {
		return err
	}
	if fl.IsRoot() {
		elapsed := rep.Makespan()
		totalMsgs := float64(msgs * (world - 1) * world)
		fmt.Printf("# wire exchange benchmark: %d ranks (OS processes), %d msgs/peer, %dB payload\n",
			world, msgs, wirePayload)
		fmt.Printf("wall %.3fs  %.0f msgs/s aggregate  %.1f MB/s aggregate  utilization %.2f\n",
			elapsed, totalMsgs/elapsed, totalMsgs*wirePayload/elapsed/1e6, rep.Utilization())
	}
	return nil
}
