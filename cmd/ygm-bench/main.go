// Command ygm-bench regenerates the paper's evaluation figures on the
// simulated cluster and prints each as a table.
//
// Usage:
//
//	ygm-bench                              # every figure, quick preset
//	ygm-bench -fig fig6a,fig8d -preset paper
//	ygm-bench -fig fig7a -cores 8 -nodes 1,4,16,64
//	ygm-bench -fig fig6a -trace out.json        # Perfetto timeline of the run
//	ygm-bench -parallel 8                       # figure cells across 8 workers, same results
//	ygm-bench -fig fig8a -cpuprofile cpu.pb.gz  # pprof profile of the sweep
//	ygm-bench -list
//
// Experiments report *simulated* seconds from the netsim cost model (one
// host executes every rank as a goroutine); see EXPERIMENTS.md for how
// the resulting shapes compare with the paper's figures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ygm/internal/bench"
	"ygm/internal/simtest"
	"ygm/internal/transport"
	"ygm/internal/wirecli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ygm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("ygm-bench", flag.ContinueOnError)
	figs := fs.String("fig", "all", "comma-separated experiment ids, or 'all'")
	preset := fs.String("preset", "quick", "workload preset: quick or paper")
	cores := fs.Int("cores", 0, "override simulated cores per node")
	nodes := fs.String("nodes", "", "override node-count sweep (comma-separated)")
	seed := fs.Int64("seed", 0, "override workload seed")
	mailbox := fs.Int("mailbox", 0, "override mailbox capacity (records)")
	format := fs.String("format", "table", "output format: table or csv")
	list := fs.Bool("list", false, "list experiments and exit")
	benchJSON := fs.String("bench-json", "", "collect the regression baseline and write it to this path")
	benchCompare := fs.String("bench-compare", "", "collect a fresh baseline and gate it against this committed file")
	benchRounds := fs.Int("bench-rounds", 3, "micro-bench rounds per entry for -bench-json/-bench-compare (best kept)")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON timeline of the run to this path (open in ui.perfetto.dev)")
	weakScaling := fs.String("weak-scaling", "", "run the scheduler weak-scaling sweep at these comma-separated rank counts (e.g. 1024,4096,16384,65536)")
	synchSweep := fs.String("synch-sweep", "", "run the synchronizability sweep (all shapes x schemes x variants) and write the per-cell JSON summary to this path")
	synchSeeds := fs.Int("synch-seeds", 4, "seeded workloads per cell for -synch-sweep")
	validateTrace := fs.String("validate-trace", "", "validate a trace file produced by -trace and exit (used by the CI trace smoke job)")
	parallel := fs.Int("parallel", 1, "run each figure's independent cells on this many workers (simulated results are identical to serial)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (captured after the run) to this path")
	wireMsgs := fs.Int("wire-msgs", 1<<16, "messages per peer for the -wire=tcp exchange benchmark")
	var wires wirecli.Flags
	wires.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if wires.Wire == "tcp" {
		return runWireBench(&wires, *wireMsgs, *seed, args)
	}
	if err := wires.Validate(0); err != nil {
		return err
	}

	runner := &bench.Runner{Workers: *parallel, CPUProfile: *cpuProfile, MemProfile: *memProfile}
	stopProfiles, err := runner.Profile()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	if *benchJSON != "" || *benchCompare != "" {
		return runBaseline(*benchJSON, *benchCompare, *benchRounds)
	}

	if *synchSweep != "" {
		return runSynchSweep(*synchSweep, *synchSeeds, *seed)
	}

	if *weakScaling != "" {
		return runWeakScaling(*weakScaling, *seed, *format)
	}

	if *validateTrace != "" {
		data, err := os.ReadFile(*validateTrace)
		if err != nil {
			return err
		}
		if err := transport.ValidateChromeTrace(data); err != nil {
			return err
		}
		fmt.Printf("# %s: valid Chrome trace (%d bytes)\n", *validateTrace, len(data))
		return nil
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return nil
	}

	p, err := bench.PresetByName(*preset)
	if err != nil {
		return err
	}
	p.Wire = wires.Wire
	if *cores > 0 {
		p.Cores = *cores
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *mailbox > 0 {
		p.MailboxCap = *mailbox
	}
	if *nodes != "" {
		var sweep []int
		for _, tok := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -nodes entry %q", tok)
			}
			sweep = append(sweep, n)
		}
		p.WeakNodes = sweep
		p.StrongNodes = sweep
		var grid []int
		for _, n := range sweep {
			if isSquare(n * p.Cores) {
				grid = append(grid, n)
			}
		}
		p.GridNodes = grid
	}

	var selected []bench.Experiment
	if *figs == "all" {
		selected = bench.Experiments()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown -format %q (have table, csv)", *format)
	}
	var tracer *transport.ChromeTracer
	if *tracePath != "" {
		tracer = transport.NewChromeTracer()
		p.Trace = tracer
	}
	if *format == "table" {
		fmt.Printf("# YGM reproduction benchmarks (preset=%s, cores/node=%d, mailbox=%d, seed=%d, wire=%s)\n",
			p.Name, p.Cores, p.MailboxCap, p.Seed, wires.Wire)
		if wires.Wire == "local" {
			fmt.Printf("# times are measured WALL seconds (in-process real-time wire)\n\n")
		} else {
			fmt.Printf("# times are SIMULATED seconds on the netsim cost model\n\n")
		}
	}
	for _, e := range selected {
		start := time.Now()
		table := runner.Run(e, p)
		if *format == "csv" {
			fmt.Printf("# %s\n", e.ID)
			table.PrintCSV(os.Stdout)
			fmt.Println()
			continue
		}
		table.Print(os.Stdout)
		fmt.Printf("(generated in %.1fs wall)\n\n", time.Since(start).Seconds())
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if _, err := tracer.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote trace to %s (open in ui.perfetto.dev)\n", *tracePath)
	}
	return nil
}

// runBaseline implements -bench-json (collect and write) and
// -bench-compare (collect and gate against a committed file). Both may be
// given together: the fresh measurement is written, then gated.
func runBaseline(writePath, comparePath string, rounds int) error {
	fmt.Printf("# collecting micro benches (%d rounds each) + figure sim-seconds\n", rounds)
	current := bench.CollectBaseline(rounds)
	for _, m := range current.Micro {
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op\n",
			m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	for _, f := range current.Figures {
		fmt.Printf("%-24s %12.4f simulated s\n", f.ID, f.SimSeconds)
	}
	if writePath != "" {
		if err := current.WriteJSON(writePath); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", writePath)
	}
	if comparePath != "" {
		committed, err := bench.LoadBaseline(comparePath)
		if err != nil {
			return err
		}
		if regressions := bench.CompareBaseline(committed, current); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			return fmt.Errorf("%d benchmark regression(s) against %s", len(regressions), comparePath)
		}
		fmt.Printf("# no regressions against %s\n", comparePath)
	}
	return nil
}

// runWeakScaling implements -weak-scaling: one scheduled
// bcast+barrier world per requested rank count, reported through the
// standard table/CSV path. The sweep measures host-side cost growth
// (wall seconds, allocated MiB) against world size — the number the
// M:N scheduler and sparse inboxes exist to keep linear.
func runWeakScaling(spec string, seed int64, format string) error {
	var ranks []int
	for _, tok := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -weak-scaling entry %q", tok)
		}
		ranks = append(ranks, n)
	}
	if seed == 0 {
		seed = 1
	}
	points, err := bench.WeakScale(ranks, seed)
	if err != nil {
		return err
	}
	table := bench.WeakScaleTable(points)
	if format == "csv" {
		table.PrintCSV(os.Stdout)
		return nil
	}
	table.Print(os.Stdout)
	return nil
}

// runSynchSweep implements -synch-sweep: every topology shape x routing
// scheme x mailbox variant cell runs seedsPerCell clean workloads under
// the synchronizability oracle, and the per-cell tallies are written as
// JSON (the nightly job uploads the file as an artifact). A sweep with
// any violation, runtime failure, or delivery failure exits nonzero.
func runSynchSweep(path string, seedsPerCell int, base int64) error {
	if seedsPerCell < 1 {
		return fmt.Errorf("-synch-seeds must be at least 1, have %d", seedsPerCell)
	}
	sum := simtest.SweepSynch(seedsPerCell, base)
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# synch sweep: %d runs, %d synchronizable, %d violations (wrote %s)\n",
		sum.Runs, sum.Synchronizable, sum.Violations, path)
	for _, cell := range sum.Cells {
		if cell.FirstViolation != "" {
			fmt.Fprintf(os.Stderr, "VIOLATION %s/%s/%s: %s\n", cell.Topo, cell.Scheme, cell.Variant, cell.FirstViolation)
		}
	}
	if sum.Violations > 0 || sum.RuntimeFailures > 0 || sum.DeliveryFailures > 0 {
		return fmt.Errorf("synch sweep found %d violations, %d runtime failures, %d delivery failures",
			sum.Violations, sum.RuntimeFailures, sum.DeliveryFailures)
	}
	return nil
}

func isSquare(n int) bool {
	r := 1
	for r*r < n {
		r++
	}
	return r*r == n
}
