package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ygm/internal/analyzers"
)

// writeScratchModule creates a minimal standalone module whose only
// finding is an unknown-name ygmvet:ignore diagnostic — enough to drive
// the exit-1 path without depending on repo state.
func writeScratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a.go":   "package a\n\n//ygmvet:ignore bogusanalyzer\nfunc F() {}\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}
	return dir
}

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"json-and-sarif", []string{"-json", "-sarif"}, "mutually exclusive"},
		{"bad-pattern", []string{"./cmd/..."}, "unsupported package pattern"},
		{"bad-flag", []string{"-nope"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit code = %d, want 2", code)
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

func TestRunNoModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d, want 2 for a directory without go.mod", code)
	}
	if !strings.Contains(stderr.String(), "go.mod") {
		t.Errorf("stderr %q does not mention go.mod", stderr.String())
	}
}

// TestRunCleanRepo is the CI invocation in miniature: the repository
// itself must be ygmvet-clean, exit 0, and print nothing.
func TestRunCleanRepo(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s\nstdout:\n%s", code, stderr.String(), stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	dir := writeScratchModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "bogusanalyzer") {
		t.Errorf("stdout %q does not carry the diagnostic", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr %q missing the finding count", stderr.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := writeScratchModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var out []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(out) != 1 || out[0].Analyzer != "ygmvet" || out[0].File != "a.go" || out[0].Line != 3 {
		t.Errorf("unexpected -json payload: %+v", out)
	}
}

func TestRunSARIFOutputToFile(t *testing.T) {
	dir := writeScratchModule(t)
	outFile := filepath.Join(t.TempDir(), "findings.sarif")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-sarif", "-o", outFile}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-o should leave stdout empty, got:\n%s", stdout.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("reading -o file: %v", err)
	}
	if err := analyzers.ValidateSARIF(data); err != nil {
		t.Errorf("emitted SARIF fails validation: %v", err)
	}
	if !strings.Contains(string(data), "bogusanalyzer") {
		t.Errorf("SARIF log does not carry the diagnostic")
	}
}
