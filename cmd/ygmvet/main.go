// Command ygmvet runs the repository's static-analysis suite
// (internal/analyzers) over the whole module. It is stdlib-only: no
// go/packages, no x/tools — the module is parsed and type-checked with
// go/parser and go/types directly.
//
// Usage:
//
//	go run ./cmd/ygmvet ./...
//	go run ./cmd/ygmvet -sarif -o findings.sarif ./...
//	go run ./cmd/ygmvet -json ./...
//
// Exit status: 0 clean, 1 findings, 2 load or usage error. The only
// accepted package pattern is "./..." (the suite is whole-module by
// design); with no arguments "./..." is implied.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ygm/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, loads the module,
// runs the suite, and renders findings to stdout (or -o) in the
// selected format. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ygmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated build tags to apply while loading (e.g. ygmcheck)")
	dir := fs.String("C", ".", "module root directory (must contain go.mod)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	outPath := fs.String("o", "", "write findings to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ygmvet [-tags taglist] [-C dir] [-json|-sarif] [-o file] [./...]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(stderr, "  %-20s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *jsonOut && *sarifOut {
		fmt.Fprintf(stderr, "ygmvet: -json and -sarif are mutually exclusive\n")
		return 2
	}
	for _, arg := range fs.Args() {
		if arg != "./..." {
			fmt.Fprintf(stderr, "ygmvet: unsupported package pattern %q (the suite is whole-module; use ./... or no argument)\n", arg)
			return 2
		}
	}

	root, err := moduleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "ygmvet: %v\n", err)
		return 2
	}

	var tagList []string
	for _, t := range strings.Split(*tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tagList = append(tagList, t)
		}
	}

	loader, err := analyzers.NewLoader(root, tagList...)
	if err != nil {
		fmt.Fprintf(stderr, "ygmvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "ygmvet: %v\n", err)
		return 2
	}

	findings := analyzers.Run(pkgs, pkgs, analyzers.All(), analyzers.DefaultScope)

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "ygmvet: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}

	switch {
	case *jsonOut:
		if err := analyzers.WriteJSON(out, findings, root); err != nil {
			fmt.Fprintf(stderr, "ygmvet: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := analyzers.WriteSARIF(out, findings, root); err != nil {
			fmt.Fprintf(stderr, "ygmvet: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(out, relativize(f, root))
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "ygmvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// moduleRoot walks upward from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

// relativize prints a finding with its filename relative to the module
// root, matching go vet's output style.
func relativize(f analyzers.Finding, root string) string {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}
