// Command ygmvet runs the repository's static-analysis suite
// (internal/analyzers) over the whole module. It is stdlib-only: no
// go/packages, no x/tools — the module is parsed and type-checked with
// go/parser and go/types directly.
//
// Usage:
//
//	go run ./cmd/ygmvet ./...
//
// Exit status: 0 clean, 1 findings, 2 load or usage error. The only
// accepted package pattern is "./..." (the suite is whole-module by
// design); with no arguments "./..." is implied.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ygm/internal/analyzers"
)

func main() {
	os.Exit(run())
}

func run() int {
	tags := flag.String("tags", "", "comma-separated build tags to apply while loading (e.g. ygmcheck)")
	dir := flag.String("C", ".", "module root directory (must contain go.mod)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ygmvet [-tags taglist] [-C dir] [./...]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "ygmvet: unsupported package pattern %q (the suite is whole-module; use ./... or no argument)\n", arg)
			return 2
		}
	}

	root, err := moduleRoot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ygmvet: %v\n", err)
		return 2
	}

	var tagList []string
	for _, t := range strings.Split(*tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tagList = append(tagList, t)
		}
	}

	loader, err := analyzers.NewLoader(root, tagList...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ygmvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ygmvet: %v\n", err)
		return 2
	}

	findings := analyzers.Run(pkgs, pkgs, analyzers.All(), analyzers.DefaultScope)
	for _, f := range findings {
		fmt.Println(relativize(f, root))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ygmvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// moduleRoot walks upward from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

// relativize prints a finding with its filename relative to the module
// root, matching go vet's output style.
func relativize(f analyzers.Finding, root string) string {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}
