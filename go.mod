module ygm

go 1.22
