// Word counting on the distributed Counter container: the canonical
// owner-computes workload. Every rank streams its share of a synthetic
// skewed word stream into container.Counter with fire-and-forget
// AsyncIncr, then the collective queries answer the aggregate questions:
// Size (distinct words), TopK (heavy hitters), and an order-independent
// digest of the full key→count table.
//
// The word stream is derived from global word indices, so the counts —
// and therefore the digest and top-K list — are identical no matter how
// the work is distributed or which wire carries it:
//
//	go run ./examples/wordcount                              # simulated cluster
//	go run ./examples/wordcount -wire=local                  # in-process, real time
//	go run ./examples/wordcount -nodes 2 -cores 2 -wire=tcp -spawn   # 4 OS processes
//	go run ./examples/wordcount -nodes 2 -cores 2 -wire=tcp -rank-id 3 -rendezvous 127.0.0.1:9411
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"sync"

	"ygm/internal/collective"
	"ygm/internal/container"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/wirecli"
	"ygm/internal/ygm"
)

func main() {
	fs := flag.NewFlagSet("wordcount", flag.ExitOnError)
	nodes := fs.Int("nodes", 2, "compute nodes")
	cores := fs.Int("cores", 2, "cores per node")
	words := fs.Int("words", 1<<20, "total words streamed across all ranks")
	vocab := fs.Int("vocab", 5000, "vocabulary size")
	topk := fs.Int("topk", 10, "heavy hitters to report")
	mailbox := fs.Int("mailbox", 4096, "mailbox capacity (records)")
	seed := fs.Int64("seed", 42, "word stream seed")
	var wires wirecli.Flags
	wires.Register(fs)
	fs.Parse(os.Args[1:])

	world := *nodes * *cores
	if err := wires.Validate(world); err != nil {
		log.Fatal(err)
	}
	if done, err := wires.Launch(world, os.Args[1:]); done {
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	wire, err := wires.NewWire()
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var res struct {
		distinct uint64
		digest   uint64
		top      []container.KeyCount
	}
	report, err := transport.Run(transport.NewConfig(machine.New(*nodes, *cores),
		transport.WithSeed(*seed),
		transport.WithWire(wire),
	), func(p *transport.Proc) error {
		eng := container.NewEngine(p,
			ygm.WithExchange(ygm.LazyExchange),
			ygm.WithCapacity(*mailbox),
		)
		cnt := container.NewCounter(eng, nil)
		comm := collective.World(p)

		// This rank's contiguous slice of the global word index space.
		// Each index maps to a word independently of the slicing, so any
		// world size and any wire produce the same global counts.
		rank, ws := int(p.Rank()), p.WorldSize()
		lo := uint64(*words) * uint64(rank) / uint64(ws)
		hi := uint64(*words) * uint64(rank+1) / uint64(ws)
		key := make([]byte, 0, 16)
		for g := lo; g < hi; g++ {
			key = appendWord(key[:0], wordID(*seed, g, uint64(*vocab)))
			cnt.AsyncIncr(key)
		}

		distinct := cnt.Size() // includes the quiescence barrier
		top := cnt.TopK(*topk)

		// Order-independent digest of the whole table: each shard mixes
		// its entries, the mixes sum globally. Equal digests across wires
		// mean equal key→count tables, not just equal headline numbers.
		var local uint64
		cnt.ForAll(func(word string, count uint64) {
			local += mix64(fnv64(word) ^ (count * 0x9e3779b97f4a7c15))
		})
		digest := comm.AllreduceU64([]uint64{local}, collective.SumU64)[0]

		if p.Rank() == 0 {
			mu.Lock()
			res.distinct, res.digest, res.top = distinct, digest, top
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	if !wires.IsRoot() {
		return
	}
	fmt.Printf("wordcount: %d words over %d ranks (%s wire), vocab %d\n",
		*words, world, wires.Wire, *vocab)
	fmt.Printf("distinct %d\n", res.distinct)
	fmt.Printf("digest %016x\n", res.digest)
	fmt.Printf("top %d words:\n", len(res.top))
	for _, kc := range res.top {
		fmt.Printf("  %-12s x%d\n", kc.Key, kc.Count)
	}
	if wires.Wire == "sim" || wires.Wire == "" {
		tot := report.Totals()
		fmt.Printf("\nsimulated time %.1f us; %d remote packets averaging %.0f B\n",
			report.Makespan()*1e6, tot.DataRemoteMsgs, tot.AvgDataRemoteMsgBytes())
	}
}

// wordID maps a global word index to a vocabulary id with a triangular
// skew toward low ids (min of two uniform draws), so the stream has
// stable heavy hitters for TopK to find.
func wordID(seed int64, g, vocab uint64) uint64 {
	h := mix64(uint64(seed) + g*0x9e3779b97f4a7c15)
	a, b := (h&0xffffffff)%vocab, (h>>32)%vocab
	if b < a {
		a = b
	}
	return a
}

func appendWord(dst []byte, id uint64) []byte {
	dst = append(dst, 'w')
	return strconv.AppendUint(dst, id, 10)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64 is FNV-1a over the word bytes.
func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
