// Quickstart: the smallest complete YGM program. It runs a 2-node,
// 2-core cluster; every rank mails a greeting to rank 0, rank 0 answers
// with an asynchronous broadcast, and everyone waits for global
// quiescence with WaitEmpty — the mailbox workflow of the paper's
// Section IV.
//
// By default the cluster is simulated in one process. The same program
// runs on every transport backend:
//
//	go run ./examples/quickstart                   # virtual-time simulator
//	go run ./examples/quickstart -wire=local       # in-process, real time
//	go run ./examples/quickstart -wire=tcp -spawn  # 4 real OS processes over localhost
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"

	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/wirecli"
	"ygm/internal/ygm"
)

func main() {
	log.SetFlags(0)
	fs := flag.NewFlagSet("quickstart", flag.ExitOnError)
	var wires wirecli.Flags
	wires.Register(fs)
	fs.Parse(os.Args[1:])

	topo := machine.New(2, 2) // 2 nodes x 2 cores = 4 ranks
	if err := wires.Validate(topo.WorldSize()); err != nil {
		log.Fatal(err)
	}
	if done, err := wires.Launch(topo.WorldSize(), os.Args[1:]); done {
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	wire, err := wires.NewWire()
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var events []string
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		events = append(events, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	report, err := transport.Run(transport.NewConfig(topo,
		transport.WithSeed(42),
		transport.WithWire(wire),
	), func(p *transport.Proc) error {
		mb := ygm.New(p, func(s ygm.Sender, payload []byte) {
			logf("rank %d received %q at t=%.1fus", p.Rank(), payload, p.Now()*1e6)
			// Receive callbacks may send more messages: rank 0 answers
			// each greeting with a broadcast.
			if p.Rank() == 0 && string(payload) != "ack" {
				s.Broadcast([]byte("ack"))
			}
		},
			ygm.WithScheme(machine.NLNR),
			ygm.WithExchange(ygm.LazyExchange),
			ygm.WithCapacity(16))

		if p.Rank() != 0 {
			msg := fmt.Sprintf("hello from (%d,%d)", p.Node(), p.Core())
			mb.Send(0, []byte(msg))
		}
		mb.WaitEmpty() // collective: returns when all mail is delivered
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Under -wire=tcp each OS process only observes its own ranks'
	// deliveries and report; rank 0 prints its local view.
	if !wires.IsRoot() {
		return
	}
	sort.Strings(events)
	for _, e := range events {
		fmt.Println(e)
	}
	timeBase := "simulated"
	if report.Wall {
		timeBase = "wall"
	}
	tot := report.Totals()
	fmt.Printf("\n%s makespan: %.1f us, utilization %.0f%%\n",
		timeBase, report.Makespan()*1e6, 100*report.Utilization())
	fmt.Printf("mailbox traffic: %d local packets, %d remote packets\n",
		tot.DataLocalMsgs, tot.DataRemoteMsgs)
}
