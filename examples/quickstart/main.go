// Quickstart: the smallest complete YGM program. It simulates a 2-node,
// 2-core cluster; every rank mails a greeting to rank 0, rank 0 answers
// with an asynchronous broadcast, and everyone waits for global
// quiescence with WaitEmpty — the mailbox workflow of the paper's
// Section IV.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func main() {
	var mu sync.Mutex
	var events []string
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		events = append(events, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	report, err := transport.Run(transport.Config{
		Topo:  machine.New(2, 2), // 2 nodes x 2 cores = 4 ranks
		Model: netsim.Quartz(),
		Seed:  42,
	}, func(p *transport.Proc) error {
		mb := ygm.New(p, func(s ygm.Sender, payload []byte) {
			logf("rank %d received %q at t=%.1fus", p.Rank(), payload, p.Now()*1e6)
			// Receive callbacks may send more messages: rank 0 answers
			// each greeting with a broadcast.
			if p.Rank() == 0 && string(payload) != "ack" {
				s.Broadcast([]byte("ack"))
			}
		},
			ygm.WithScheme(machine.NLNR),
			ygm.WithExchange(ygm.LazyExchange),
			ygm.WithCapacity(16))

		if p.Rank() != 0 {
			msg := fmt.Sprintf("hello from (%d,%d)", p.Node(), p.Core())
			mb.Send(0, []byte(msg))
		}
		mb.WaitEmpty() // collective: returns when all mail is delivered
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	sort.Strings(events)
	for _, e := range events {
		fmt.Println(e)
	}
	tot := report.Totals()
	fmt.Printf("\nsimulated makespan: %.1f us, utilization %.0f%%\n",
		report.Makespan()*1e6, 100*report.Utilization())
	fmt.Printf("mailbox traffic: %d local packets, %d remote packets\n",
		tot.DataLocalMsgs, tot.DataRemoteMsgs)
}
