// Connected components on an RMAT graph with vertex delegates and
// asynchronous-broadcast label synchronization — the Section V-B
// application. The example prints the component-size histogram, the
// number of delegates the skewed degree distribution produced, and how
// many broadcasts the delegate synchronization consumed per pass.
//
// Run with: go run ./examples/connectedcomp [-scale S] [-edges E]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"ygm/internal/apps"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func main() {
	scale := flag.Int("scale", 10, "graph has 2^scale vertices")
	edges := flag.Int("edges", 1024, "edges generated per rank")
	nodes := flag.Int("nodes", 4, "simulated compute nodes")
	cores := flag.Int("cores", 4, "cores per node")
	frac := flag.Float64("delegate-frac", 0.05, "delegate threshold as a fraction of the expected max degree")
	flag.Parse()

	world := *nodes * *cores
	cfg := apps.ConnectedComponentsConfig{
		Mailbox:      ygm.Options{Scheme: machine.NodeRemote, Capacity: 512},
		Scale:        *scale,
		EdgesPerRank: *edges,
		Params:       graph.Graph500,
		DelegateFrac: *frac,
		Seed:         13,
	}

	var mu sync.Mutex
	results := make([]*apps.ConnectedComponentsResult, world)
	report, err := transport.Run(transport.NewConfig(machine.New(*nodes, *cores),
		transport.WithModel(netsim.Quartz()),
		transport.WithSeed(13),
	), func(p *transport.Proc) error {
		res, err := apps.ConnectedComponents(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the global labeling and histogram component sizes.
	n := uint64(1) << uint(*scale)
	sizes := map[uint64]uint64{}
	for v := uint64(0); v < n; v++ {
		owner := graph.Owner(v, world)
		sizes[results[owner].Labels[graph.LocalID(v, world)]]++
	}
	var comps []uint64
	for _, s := range sizes {
		comps = append(comps, s)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i] > comps[j] })

	var broadcasts uint64
	for _, r := range results {
		broadcasts += r.Broadcasts
	}

	fmt.Printf("graph: 2^%d vertices, %d edges across %d ranks (Graph500 RMAT)\n", *scale, *edges*world, world)
	fmt.Printf("components: %d (largest %d vertices)\n", len(comps), comps[0])
	fmt.Printf("top 5 component sizes: %v\n", comps[:minInt(5, len(comps))])
	fmt.Printf("delegates: %d, passes: %d, delegate-sync broadcasts: %d\n",
		results[0].Delegates, results[0].Passes, broadcasts)
	fmt.Printf("simulated time: %.1f us, utilization %.0f%%\n",
		report.Makespan()*1e6, 100*report.Utilization())
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
