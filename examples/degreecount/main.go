// Degree counting (Algorithm 1 of the paper): stream uniform random
// edges through the mailbox, counting vertex degrees at their owner
// ranks, and compare the four routing schemes on the same workload —
// a miniature of the Fig. 6 experiment.
//
// Run with: go run ./examples/degreecount [-nodes N] [-cores C] [-edges E]
package main

import (
	"flag"
	"fmt"
	"log"

	"ygm/internal/apps"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func main() {
	nodes := flag.Int("nodes", 16, "simulated compute nodes")
	cores := flag.Int("cores", 4, "cores per node")
	edges := flag.Int("edges", 2048, "edges generated per rank")
	capacity := flag.Int("mailbox", 256, "mailbox capacity in records")
	flag.Parse()

	world := *nodes * *cores
	numVertices := uint64(world) * 256

	fmt.Printf("degree counting: %d nodes x %d cores, %d edges/rank, %d vertices\n\n",
		*nodes, *cores, *edges, numVertices)
	fmt.Printf("%-12s %12s %14s %16s %12s\n", "scheme", "sim time", "remote pkts", "avg remote pkt", "utilization")

	for _, scheme := range machine.Schemes {
		cfg := apps.DegreeCountConfig{
			Mailbox:      ygm.Options{Scheme: scheme, Capacity: *capacity},
			NumVertices:  numVertices,
			EdgesPerRank: *edges,
			NewGen: func(p *transport.Proc) graph.Generator {
				return graph.NewUniform(numVertices, 7+int64(p.Rank()))
			},
		}
		report, err := transport.Run(transport.NewConfig(machine.New(*nodes, *cores),
			transport.WithModel(netsim.Quartz()),
			transport.WithSeed(7),
		), func(p *transport.Proc) error {
			res, err := apps.DegreeCount(p, cfg)
			if err != nil {
				return err
			}
			// Sanity: every received message incremented some counter.
			var local uint64
			for _, d := range res.Degrees {
				local += d
			}
			_ = local
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		tot := report.Totals()
		fmt.Printf("%-12s %10.1fus %14d %14.1fB %11.1f%%\n",
			scheme, report.Makespan()*1e6, tot.DataRemoteMsgs,
			tot.AvgDataRemoteMsgBytes(), 100*report.Utilization())
	}
	fmt.Println("\nrouting schemes trade local forwarding hops for fewer, larger remote packets;")
	fmt.Println("watch avg remote packet size grow NoRoute -> NodeLocal/NodeRemote -> NLNR.")
}
