// Degree counting (Algorithm 1 of the paper) on the distributed Counter
// container: stream uniform random edges, AsyncIncr both endpoints'
// degrees at their owner ranks, and compare the four routing schemes on
// the same workload — a miniature of the Fig. 6 experiment. The owner-
// computes loop that previously needed a hand-rolled handler is now two
// container calls per edge.
//
// Run with: go run ./examples/degreecount [-nodes N] [-cores C] [-edges E]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"

	"ygm/internal/collective"
	"ygm/internal/container"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func main() {
	nodes := flag.Int("nodes", 16, "simulated compute nodes")
	cores := flag.Int("cores", 4, "cores per node")
	edges := flag.Int("edges", 2048, "edges generated per rank")
	capacity := flag.Int("mailbox", 256, "mailbox capacity in records")
	flag.Parse()

	world := *nodes * *cores
	numVertices := uint64(world) * 256

	fmt.Printf("degree counting: %d nodes x %d cores, %d edges/rank, %d vertices\n\n",
		*nodes, *cores, *edges, numVertices)
	fmt.Printf("%-12s %12s %14s %16s %12s\n", "scheme", "sim time", "remote pkts", "avg remote pkt", "utilization")

	for _, scheme := range machine.Schemes {
		scheme := scheme
		report, err := transport.Run(transport.NewConfig(machine.New(*nodes, *cores),
			transport.WithModel(netsim.Quartz()),
			transport.WithSeed(7),
		), func(p *transport.Proc) error {
			eng := container.NewEngine(p,
				ygm.WithScheme(scheme),
				ygm.WithCapacity(*capacity),
			)
			deg := container.NewCounter(eng, nil)
			comm := collective.World(p)

			gen := graph.NewUniform(numVertices, 7+int64(p.Rank()))
			key := make([]byte, 0, 20)
			for i := 0; i < *edges; i++ {
				e := gen.Next()
				key = strconv.AppendUint(key[:0], e.U, 10)
				deg.AsyncIncr(key)
				key = strconv.AppendUint(key[:0], e.V, 10)
				deg.AsyncIncr(key)
			}

			// Conservation check: the owner shards must hold exactly two
			// degree increments per generated edge, no matter how the
			// scheme routed them.
			var local uint64
			deg.ForAll(func(vertex string, d uint64) { local += d })
			total := comm.AllreduceU64([]uint64{local}, collective.SumU64)[0]
			if want := 2 * uint64(*edges) * uint64(p.WorldSize()); total != want {
				return fmt.Errorf("degreecount: %s: %d degree increments, want %d", scheme, total, want)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		tot := report.Totals()
		fmt.Printf("%-12s %10.1fus %14d %14.1fB %11.1f%%\n",
			scheme, report.Makespan()*1e6, tot.DataRemoteMsgs,
			tot.AvgDataRemoteMsgBytes(), 100*report.Utilization())
	}
	fmt.Println("\nrouting schemes trade local forwarding hops for fewer, larger remote packets;")
	fmt.Println("watch avg remote packet size grow NoRoute -> NodeLocal/NodeRemote -> NLNR.")
}
