// Sparse matrix-dense vector multiplication (Algorithm 2) with vertex
// delegates, compared head-to-head against the CombBLAS-style 2D
// bulk-synchronous baseline on the same matrix — a miniature of the
// Fig. 8 comparison. Both implementations multiply the identical
// deterministic matrix, so the example also cross-validates them
// against the sequential oracle before timing.
//
// Run with: go run ./examples/spmv [-scale S] [-nodes N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"

	"ygm/internal/apps"
	"ygm/internal/combblas"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/spmat"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func main() {
	scale := flag.Int("scale", 10, "matrix is 2^scale x 2^scale")
	nodes := flag.Int("nodes", 4, "simulated compute nodes (nodes*cores must be square for the 2D baseline)")
	cores := flag.Int("cores", 4, "cores per node")
	edgeFactor := flag.Int("ef", 8, "nonzeros per matrix row (edge factor)")
	flag.Parse()

	world := *nodes * *cores
	n := uint64(1) << uint(*scale)
	edgesPerRank := int(n) * *edgeFactor / world
	const seed = 21

	// Sequential oracle for validation.
	var trips []spmat.Triplet
	for r := 0; r < world; r++ {
		g := graph.NewRMAT(graph.Graph500, *scale, seed*104729+int64(r))
		for k := 0; k < edgesPerRank; k++ {
			e := g.Next()
			trips = append(trips, spmat.Triplet{Row: e.V, Col: e.U, Val: apps.MatrixValue(e.U, e.V)})
		}
	}
	x := make([]float64, n)
	for j := range x {
		x[j] = apps.XValue(uint64(j), 0)
	}
	want := spmat.SpMVSeq(trips, x)

	// YGM SpMV with delegates, NLNR routing.
	ygmCfg := apps.SpMVConfig{
		Mailbox:      ygm.Options{Scheme: machine.NLNR, Capacity: 512},
		Scale:        *scale,
		EdgesPerRank: edgesPerRank,
		Params:       graph.Graph500,
		DelegateFrac: 0.05,
		Seed:         seed,
		Iterations:   1,
	}
	results := make([]*apps.SpMVResult, world)
	var mu sync.Mutex
	ygmReport, err := transport.Run(transport.NewConfig(machine.New(*nodes, *cores),
		transport.WithModel(netsim.Quartz()), transport.WithSeed(seed),
	), func(p *transport.Proc) error {
		res, err := apps.SpMV(p, ygmCfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := uint64(0); i < n; i++ {
		got := results[graph.Owner(i, world)].Y[graph.LocalID(i, world)]
		if e := math.Abs(got - want[i]); e > maxErr {
			maxErr = e
		}
	}

	fmt.Printf("matrix: 2^%d x 2^%d, %d nonzeros, %d delegates\n", *scale, *scale, len(trips), results[0].Delegates)
	fmt.Printf("YGM SpMV (NLNR):      %8.1f us simulated, max |err| = %.2e\n", ygmReport.Makespan()*1e6, maxErr)

	// CombBLAS-style 2D baseline on the same matrix.
	cbCfg := combblas.Config{
		Scale: *scale, EdgesPerRank: edgesPerRank, Params: graph.Graph500,
		Seed: seed, Iterations: 1, XValue: apps.XValue, MatrixValue: apps.MatrixValue,
	}
	cbResults := make([]*combblas.Result, world)
	cbReport, err := transport.Run(transport.NewConfig(machine.New(*nodes, *cores),
		transport.WithModel(netsim.Quartz()), transport.WithSeed(seed),
	), func(p *transport.Proc) error {
		res, err := combblas.SpMV(p, cbCfg)
		if err != nil {
			return err
		}
		mu.Lock()
		cbResults[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatalf("2D baseline failed (is nodes*cores a perfect square?): %v", err)
	}
	grid, _ := spmat.NewGrid(world)
	maxErr = 0
	for b := 0; b < grid.R; b++ {
		res := cbResults[grid.RankAt(b, b)]
		for k, v := range res.Y {
			if e := math.Abs(v - want[res.YLo+uint64(k)]); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("CombBLAS-style 2D:    %8.1f us simulated, max |err| = %.2e\n", cbReport.Makespan()*1e6, maxErr)
	fmt.Println("\nthe 2D baseline wins at small scale; YGM's asynchronous routing overtakes as")
	fmt.Println("node counts grow (run the fig8a benchmark for the full sweep)")
}
