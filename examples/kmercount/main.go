// K-mer counting: the HipMer-inspired workload of Section II, carried by
// the distributed Counter container. Ranks stream synthetic DNA reads,
// cut them into k-mers, and AsyncIncr each one — the container ships the
// k-mer to its hash-determined owner through the coalescing mailbox, and
// the collective queries (Size, TopK) answer the aggregate questions
// that previously needed a hand-rolled handler and a post-run merge.
//
// Run with: go run ./examples/kmercount [-reads R] [-k K]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"ygm/internal/collective"
	"ygm/internal/container"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

var bases = []byte("ACGT")

func main() {
	reads := flag.Int("reads", 64, "reads per rank")
	readLen := flag.Int("readlen", 100, "bases per read")
	k := flag.Int("k", 6, "k-mer length")
	nodes := flag.Int("nodes", 4, "simulated compute nodes")
	cores := flag.Int("cores", 4, "cores per node")
	capacity := flag.Int("mailbox", 256, "mailbox capacity in records")
	flag.Parse()
	if *k <= 0 || *readLen < *k {
		log.Fatalf("kmercount: need 0 < k <= readlen, have k=%d readlen=%d", *k, *readLen)
	}

	world := *nodes * *cores
	var mu sync.Mutex
	var produced, distinct uint64
	var top []container.KeyCount
	report, err := transport.Run(transport.NewConfig(machine.New(*nodes, *cores),
		transport.WithModel(netsim.Quartz()),
		transport.WithSeed(31),
	), func(p *transport.Proc) error {
		eng := container.NewEngine(p,
			ygm.WithScheme(machine.NodeRemote),
			ygm.WithCapacity(*capacity),
		)
		cnt := container.NewCounter(eng, nil)
		comm := collective.World(p)

		src := p.Rng()
		read := make([]byte, *readLen)
		var local uint64
		for r := 0; r < *reads; r++ {
			for i := range read {
				read[i] = bases[src.Intn(4)]
			}
			for i := 0; i+*k <= *readLen; i++ {
				cnt.AsyncIncr(read[i : i+*k])
				local++
			}
		}

		d := cnt.Size() // quiescence barrier + distinct count
		t := cnt.TopK(5)
		total := comm.AllreduceU64([]uint64{local}, collective.SumU64)[0]
		if p.Rank() == 0 {
			mu.Lock()
			produced, distinct, top = total, d, t
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d reads x %d ranks, k=%d: %d k-mer instances, %d distinct\n",
		*reads, world, *k, produced, distinct)
	fmt.Println("most frequent k-mers:")
	for _, kc := range top {
		fmt.Printf("  %s  x%d\n", kc.Key, kc.Count)
	}
	tot := report.Totals()
	fmt.Printf("\nsimulated time %.1f us; %d remote packets averaging %.0f B (coalesced from %d-byte k-mers)\n",
		report.Makespan()*1e6, tot.DataRemoteMsgs, tot.AvgDataRemoteMsgBytes(), *k)
}
