// K-mer counting: the HipMer-inspired workload of Section II. Ranks
// stream synthetic DNA reads, cut them into k-mers, and mail each k-mer
// (a variable-length payload) to a hash-determined owner for counting —
// the buffered many-to-many pattern used in distributed de Bruijn graph
// construction.
//
// Run with: go run ./examples/kmercount [-reads R] [-k K]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"ygm/internal/apps"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func main() {
	reads := flag.Int("reads", 64, "reads per rank")
	readLen := flag.Int("readlen", 100, "bases per read")
	k := flag.Int("k", 6, "k-mer length")
	nodes := flag.Int("nodes", 4, "simulated compute nodes")
	cores := flag.Int("cores", 4, "cores per node")
	flag.Parse()

	world := *nodes * *cores
	cfg := apps.KmerCountConfig{
		Mailbox:      ygm.Options{Scheme: machine.NodeRemote, Capacity: 256},
		ReadsPerRank: *reads,
		ReadLen:      *readLen,
		K:            *k,
	}

	var mu sync.Mutex
	results := make([]*apps.KmerCountResult, world)
	report, err := transport.Run(transport.NewConfig(machine.New(*nodes, *cores),
		transport.WithModel(netsim.Quartz()),
		transport.WithSeed(31),
	), func(p *transport.Proc) error {
		res, err := apps.KmerCount(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	type kc struct {
		kmer  string
		count uint64
	}
	var all []kc
	var produced, distinct uint64
	for _, r := range results {
		produced += r.TotalKmers
		for kmer, c := range r.Counts {
			all = append(all, kc{kmer, c})
			distinct++
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].kmer < all[j].kmer
	})

	fmt.Printf("%d reads x %d ranks, k=%d: %d k-mer instances, %d distinct\n",
		*reads, world, *k, produced, distinct)
	fmt.Println("most frequent k-mers:")
	for i := 0; i < 5 && i < len(all); i++ {
		fmt.Printf("  %s  x%d\n", all[i].kmer, all[i].count)
	}
	tot := report.Totals()
	fmt.Printf("\nsimulated time %.1f us; %d remote packets averaging %.0f B (coalesced from %d-byte k-mers)\n",
		report.Makespan()*1e6, tot.DataRemoteMsgs, tot.AvgDataRemoteMsgBytes(), *k)
}
