// GraphBLAS-on-YGM (the Section VII future-work direction): build a
// distributed sparse adjacency matrix, then run BFS as iterated
// (min,plus) semiring matrix-vector products — every partial product
// travels through the YGM mailbox with NLNR routing. Also demonstrates
// plus-times SpMV and a global semiring reduction.
//
// Run with: go run ./examples/graphblas [-scale S]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"

	"ygm/internal/graph"
	"ygm/internal/grb"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/spmat"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func main() {
	scale := flag.Int("scale", 9, "graph has 2^scale vertices")
	edges := flag.Int("edges", 512, "edges generated per rank")
	nodes := flag.Int("nodes", 4, "simulated compute nodes")
	cores := flag.Int("cores", 4, "cores per node")
	flag.Parse()

	n := uint64(1) << uint(*scale)
	var mu sync.Mutex
	levelCount := map[float64]uint64{}
	var reached, totalNNZ float64

	report, err := transport.Run(transport.NewConfig(machine.New(*nodes, *cores),
		transport.WithModel(netsim.Quartz()),
		transport.WithSeed(23),
	), func(p *transport.Proc) error {
		ctx := grb.NewContext(p, ygm.WithScheme(machine.NLNR), ygm.WithCapacity(512))

		// Each rank contributes its share of a symmetric adjacency.
		gen := graph.NewRMAT(graph.Graph500, *scale, 23+int64(p.Rank()))
		var mine []spmat.Triplet
		for i := 0; i < *edges; i++ {
			e := gen.Next()
			mine = append(mine,
				spmat.Triplet{Row: e.V, Col: e.U, Val: 1},
				spmat.Triplet{Row: e.U, Col: e.V, Val: 1})
		}
		a, err := ctx.BuildMatrix(n, mine)
		if err != nil {
			return err
		}

		// BFS levels = (min,plus) fixpoint from vertex 0.
		dist, err := ctx.BFSLevels(a, 0)
		if err != nil {
			return err
		}

		// Count reached vertices per level (locally, merged below).
		local := map[float64]uint64{}
		var localReached float64
		for _, d := range dist.GetLocal() {
			if !math.IsInf(d, 1) {
				local[d]++
				localReached++
			}
		}
		mu.Lock()
		for lvl, c := range local {
			levelCount[lvl] += c
		}
		mu.Unlock()

		// A plus-times product and a global reduction, for flavour.
		ones := ctx.NewVector(n, 1)
		deg, err := ctx.MxV(grb.PlusTimes, a, ones)
		if err != nil {
			return err
		}
		nnz := ctx.ReduceScalar(grb.PlusTimes, deg) // == total stored entries
		r := ctx.ReduceScalar(grb.PlusTimes, boolify(ctx, dist))
		if p.Rank() == 0 {
			mu.Lock()
			totalNNZ = nnz
			reached = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("adjacency: 2^%d vertices, %.0f stored entries\n", *scale, totalNNZ)
	fmt.Printf("BFS from vertex 0 reached %.0f vertices:\n", reached)
	for lvl := 0.0; ; lvl++ {
		c, ok := levelCount[lvl]
		if !ok {
			break
		}
		fmt.Printf("  level %2.0f: %6d vertices\n", lvl, c)
	}
	fmt.Printf("\nsimulated time %.1f us across %d ranks (NLNR-routed semiring products)\n",
		report.Makespan()*1e6, *nodes**cores)
}

// boolify maps reached entries to 1 and unreached to 0.
func boolify(ctx *grb.Context, v *grb.Vector) *grb.Vector {
	out := ctx.NewVector(v.N(), 0)
	lo := out.GetLocal()
	for i, d := range v.GetLocal() {
		if !math.IsInf(d, 1) {
			lo[i] = 1
		}
	}
	return out
}
